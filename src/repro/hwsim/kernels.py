"""Kernel archetypes and the Table IV counter model.

The paper's Table IV contrasts GPU performance counters of two neural
kernels (``sgemm_nn``, ``relu_nn``) against two symbolic kernels
(``vectorized_elem``, ``elementwise``) from the NVSA workload.  We
reproduce those counters with a hybrid model:

* **Hit rates** come from replaying a structurally-faithful address
  stream through a set-associative hierarchy whose L1 is one SM's
  slice (reuse across thread-blocks on other SMs cannot hit in a
  private L1, only in the shared L2):

  - ``sgemm_nn``   — shared-memory-tiled GEMM: every A/B tile line
    passes through L1 once per consuming thread-block (temporal reuse
    lives in shared memory/registers, invisible to L1), so the L1 hit
    rate is near zero while the L2 catches cross-block tile reuse.
  - ``relu_nn``    — activation epilogue: in-place read-then-write per
    line over GEMM output still resident in L2 (~50% L1 hits from the
    write following the read, high L2 hits from residency).
  - ``vectorized_elem`` — NVSA vector-symbolic kernel: two huge
    streaming operands (hypervector arrays much larger than L2) plus a
    small broadcast codebook slice that stays L1-resident.
  - ``elementwise`` — in-place binary op over two huge operands
    (``a += b``): read-miss, read-miss, write-hit per element triple.

* **Timing and utilization** come from an analytic pipe model.  Each
  kernel's elapsed time is the max over pipe times (instruction issue,
  FMA, L1, L2, DRAM, with sustained-efficiency deratings); counters are
  pipe-time over elapsed-time ratios:

  - compute throughput — issue/FMA pipe activity share;
  - ALU utilization    — compute throughput weighted by the FP share
    of the instruction mix;
  - L1/L2 throughput   — cache-level traffic time over elapsed;
  - DRAM BW utilization — achieved DRAM bandwidth over peak.

  ``relu_nn`` carries ``fused_epilogue=True``: profiled inside NVSA it
  executes fused with (or back-to-back after) the producing GEMM, so
  its SM-activity counter reflects the producer's near-peak pipeline
  rather than its own tiny instruction stream; we model that activity
  as 95% derated by any exposed DRAM stall.

Counter semantics approximate (not equal) Nsight Compute's; the point
reproduced is the qualitative contrast — neural kernels busy and
cache-friendly, symbolic kernels DRAM-saturated with idle ALUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.hwsim.cache import CacheHierarchy
from repro.hwsim.device import CacheSpec, DeviceSpec

Stream = Tuple[np.ndarray, np.ndarray]  # (line addresses, is_write flags)

#: sustained fractions of peak for the pipe-time deratings
_FMA_SUSTAIN = 0.95
_DRAM_SUSTAIN = 0.90


@dataclass
class KernelProfile:
    """One kernel archetype: stream generator + analytic traffic model."""

    name: str
    kind: str                     # "neural" | "symbolic"
    flops: float                  # full-size FLOP count
    warp_insts: float             # full-size warp instructions issued
    fp_inst_share: float          # fraction of instructions on FP pipes
    l1_bytes: float               # full-size L1-*structure* traffic (on
                                  # NVIDIA, L1 and shared memory are one
                                  # physical structure, so GEMM register
                                  # tile loads count here)
    global_bytes: float           # full-size global-memory access traffic
                                  # (what the address stream models)
    compulsory_bytes: float       # full-size compulsory DRAM traffic
    sim_compulsory_bytes: float   # compulsory DRAM traffic of the sim stream
    stream: Callable[[], Stream]  # scaled-down address stream
    warm: Optional[Callable[[], np.ndarray]] = None  # lines pre-resident in L2
    fused_epilogue: bool = False  # SM activity inherited from producer kernel


@dataclass
class KernelCounters:
    """Our reproduction of one Table IV column."""

    name: str
    kind: str
    compute_throughput_pct: float
    alu_utilization_pct: float
    l1_throughput_pct: float
    l2_throughput_pct: float
    l1_hit_rate_pct: float
    l2_hit_rate_pct: float
    dram_bw_utilization_pct: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "Compute Throughput (%)": self.compute_throughput_pct,
            "ALU Utilization (%)": self.alu_utilization_pct,
            "L1 Cache Throughput (%)": self.l1_throughput_pct,
            "L2 Cache Throughput (%)": self.l2_throughput_pct,
            "L1 Cache Hit Rate (%)": self.l1_hit_rate_pct,
            "L2 Cache Hit Rate (%)": self.l2_hit_rate_pct,
            "DRAM BW Utilization (%)": self.dram_bw_utilization_pct,
        }


# ---------------------------------------------------------------------------
# address-stream generators (line granularity; one access = one 128B
# transaction serving 32 consecutive fp32 elements)
# ---------------------------------------------------------------------------

def _gemm_stream(m: int, n: int, k: int, line_size: int,
                 bm: int = 64, bn: int = 64, bk: int = 32) -> Stream:
    """Shared-memory-tiled GEMM: A/B tile lines stream through L1 once
    per consuming thread-block; C written once at the end of each block."""
    epl = line_size // 4  # fp32 elements per line
    a_base = 0
    b_base = m * k // epl + 1
    c_base = b_base + k * n // epl + 1
    addrs, writes = [], []
    for mb in range(m // bm):
        for nb in range(n // bn):
            for kb in range(k // bk):
                # A tile: rows mb*bm..+bm, cols kb*bk..+bk (row-major)
                for row in range(bm):
                    line0 = ((mb * bm + row) * k + kb * bk) // epl
                    for line in range(line0, line0 + max(1, bk // epl)):
                        addrs.append(a_base + line)
                        writes.append(False)
                # B tile: rows kb*bk..+bk, cols nb*bn..+bn
                for row in range(bk):
                    line0 = ((kb * bk + row) * n + nb * bn) // epl
                    for line in range(line0, line0 + max(1, bn // epl)):
                        addrs.append(b_base + line)
                        writes.append(False)
            # C tile writes
            for row in range(bm):
                line0 = ((mb * bm + row) * n + nb * bn) // epl
                for line in range(line0, line0 + max(1, bn // epl)):
                    addrs.append(c_base + line)
                    writes.append(True)
    return np.array(addrs, dtype=np.int64), np.array(writes, dtype=bool)


def _relu_stream(n_elems: int, line_size: int) -> Stream:
    """In-place activation: read line then write the same line."""
    epl = line_size // 4
    n_lines = n_elems // epl
    lines = np.arange(n_lines, dtype=np.int64)
    addrs = np.repeat(lines, 2)
    writes = np.tile(np.array([False, True]), n_lines)
    return addrs, writes


def _vectorized_elem_stream(n_elems: int, table_elems: int,
                            line_size: int) -> Stream:
    """Chained NVSA vector ops: two streaming operands, a broadcast
    codebook slice read twice, and two fused stages whose intermediate
    is written then read back while still L2-resident.

    Per element line: a(r), table(r), b(r), table(r), c(w), c(r),
    d(w), d(r) — the c/d read-backs model the producer-consumer chains
    of NVSA's rule algebra (bind -> bundle -> normalize).
    """
    epl = line_size // 4
    n_lines = n_elems // epl
    t_lines = max(1, table_elems // epl)
    a = np.arange(n_lines, dtype=np.int64)
    b = a + n_lines + 1
    c = b + n_lines + 1
    d = c + n_lines + 1
    table = d + n_lines + 1 + (np.arange(n_lines) % t_lines)
    per = 8
    addrs = np.empty(per * n_lines, dtype=np.int64)
    addrs[0::per], addrs[1::per], addrs[2::per], addrs[3::per] = a, table, b, table
    addrs[4::per], addrs[5::per], addrs[6::per], addrs[7::per] = c, c, d, d
    writes = np.zeros(per * n_lines, dtype=bool)
    writes[4::per] = True
    writes[6::per] = True
    return addrs, writes


def _elementwise_stream(n_elems: int, line_size: int) -> Stream:
    """In-place binary op (a += b): read a, read b, write a."""
    epl = line_size // 4
    n_lines = n_elems // epl
    a = np.arange(n_lines, dtype=np.int64)
    b = a + n_lines + 1
    addrs = np.empty(3 * n_lines, dtype=np.int64)
    addrs[0::3], addrs[1::3], addrs[2::3] = a, b, a
    writes = np.zeros(3 * n_lines, dtype=bool)
    writes[2::3] = True
    return addrs, writes


# ---------------------------------------------------------------------------
# the four Table IV archetypes
# ---------------------------------------------------------------------------

def nvsa_table4_kernels(device: DeviceSpec) -> Tuple[KernelProfile, ...]:
    """Kernel profiles sized after NVSA's actual workloads.

    Full sizes: the GEMM is a conv-lowered layer (m=2048, n=256,
    k=1152); relu acts on its output; the symbolic kernels stream
    codebook-scale hypervector arrays (32M elements, far beyond L2).
    Streams are scaled down for simulation; hit rates are
    structure-determined and size-stable.
    """
    line = device.l1.line_size
    epl = line // 4

    # -- sgemm_nn ----------------------------------------------------------
    m, n, k = 2048, 256, 1152
    sm, sn, sk = 512, 256, 288
    bm = bn = 64
    gemm_flops = 2.0 * m * n * k
    gemm_insts = gemm_flops / 2 / 32 * 1.10   # FMA warp-insts + 10% overhead
    register_block = 8                         # smem->register tile reuse
    gemm_l1_bytes = 2.0 * m * n * k / register_block * 4
    gemm_global = (m * n * k * (1.0 / bm + 1.0 / bn) + m * n) * 4
    gemm_compulsory = 4.0 * (m * k + k * n + m * n)
    sim_compulsory = 4.0 * (sm * sk + sk * sn + sm * sn)

    # -- relu_nn -----------------------------------------------------------
    relu_elems = m * n
    relu_sim = 512 * 1024
    relu_flops = 2.0 * relu_elems
    relu_insts = 8.0 * relu_elems / 32        # ld/bias/fadd/fmax/st + addressing
    relu_l1_bytes = 8.0 * relu_elems
    relu_residency = 0.92                     # fraction served from L2, not DRAM
    relu_compulsory = (1 - relu_residency) * 8.0 * relu_elems
    relu_sim_compulsory = (1 - relu_residency) * 8.0 * relu_sim

    # -- vectorized_elem ----------------------------------------------------
    vec_elems = 32 * 1024 * 1024
    vec_sim = 2 * 1024 * 1024
    table_elems = 4 * 1024                    # codebook slice, L1-resident
    vec_flops = 4.0 * vec_elems
    vec_insts = 10.0 * vec_elems / 32
    vec_l1_bytes = 32.0 * vec_elems            # 8 accesses/element line
    vec_compulsory = 20.0 * vec_elems          # a, b in; c, d out + c fetch
    vec_sim_compulsory = 20.0 * vec_sim

    # -- elementwise ---------------------------------------------------------
    ew_elems = 32 * 1024 * 1024
    ew_sim = 2 * 1024 * 1024
    ew_flops = 1.0 * ew_elems
    ew_insts = 3.0 * ew_elems / 32
    ew_l1_bytes = 12.0 * ew_elems
    ew_compulsory = 12.0 * ew_elems            # a in/out, b in
    ew_sim_compulsory = 12.0 * ew_sim

    return (
        KernelProfile(
            name="sgemm_nn", kind="neural",
            flops=gemm_flops, warp_insts=gemm_insts, fp_inst_share=0.93,
            l1_bytes=gemm_l1_bytes, global_bytes=gemm_global,
            compulsory_bytes=gemm_compulsory,
            sim_compulsory_bytes=sim_compulsory,
            stream=lambda: _gemm_stream(sm, sn, sk, line),
        ),
        KernelProfile(
            name="relu_nn", kind="neural",
            flops=relu_flops, warp_insts=relu_insts, fp_inst_share=0.50,
            l1_bytes=relu_l1_bytes, global_bytes=relu_l1_bytes,
            compulsory_bytes=relu_compulsory,
            sim_compulsory_bytes=relu_sim_compulsory,
            stream=lambda: _relu_stream(relu_sim, line),
            warm=lambda: np.arange(relu_sim // epl, dtype=np.int64),
            fused_epilogue=True,
        ),
        KernelProfile(
            name="vectorized_elem", kind="symbolic",
            flops=vec_flops, warp_insts=vec_insts, fp_inst_share=0.60,
            l1_bytes=vec_l1_bytes, global_bytes=vec_l1_bytes,
            compulsory_bytes=vec_compulsory,
            sim_compulsory_bytes=vec_sim_compulsory,
            stream=lambda: _vectorized_elem_stream(vec_sim, table_elems, line),
        ),
        KernelProfile(
            name="elementwise", kind="symbolic",
            flops=ew_flops, warp_insts=ew_insts, fp_inst_share=0.50,
            l1_bytes=ew_l1_bytes, global_bytes=ew_l1_bytes,
            compulsory_bytes=ew_compulsory,
            sim_compulsory_bytes=ew_sim_compulsory,
            stream=lambda: _elementwise_stream(ew_sim, line),
        ),
    )


# ---------------------------------------------------------------------------
# counter synthesis
# ---------------------------------------------------------------------------

def _per_core_l1(device: DeviceSpec) -> CacheSpec:
    """One SM's private L1 slice (cross-SM reuse only hits in L2)."""
    slice_size = max(device.l1.line_size * device.l1.associativity,
                     device.l1.size // device.num_cores)
    # round down to a valid geometry
    unit = device.l1.line_size * device.l1.associativity
    slice_size = (slice_size // unit) * unit
    return CacheSpec(size=slice_size, line_size=device.l1.line_size,
                     associativity=device.l1.associativity,
                     bandwidth=device.l1.bandwidth)


def simulate_kernel(profile: KernelProfile, device: DeviceSpec,
                    schedulers_per_core: int = 4) -> KernelCounters:
    """Replay the kernel's stream through the cache hierarchy and apply
    the analytic pipe-timing model; returns one Table IV column."""
    hierarchy = CacheHierarchy(_per_core_l1(device), device.l2)
    if profile.warm is not None:
        hierarchy.warm(profile.warm())
    addrs, writes = profile.stream()
    hierarchy.replay(addrs, writes)
    stats = hierarchy.stats()

    # scale simulated per-level traffic up to the full problem size:
    # L2 keeps the simulated L2:global traffic ratio; DRAM scales by the
    # ratio of full-size to simulated compulsory traffic (with the
    # full-size compulsory traffic as a floor)
    dram_scale = (profile.compulsory_bytes
                  / max(profile.sim_compulsory_bytes, 1.0))
    l2_bytes = profile.global_bytes * (stats.l2_bytes / max(stats.l1_bytes, 1))
    dram_bytes = max(stats.dram_bytes * dram_scale, profile.compulsory_bytes)

    issue_bw = device.num_cores * schedulers_per_core * device.clock_hz
    t_issue_ideal = profile.warp_insts / issue_bw
    t_fma_ideal = profile.flops / device.peak_flops
    t_fma = t_fma_ideal / _FMA_SUSTAIN
    t_l1 = profile.l1_bytes / device.l1.bandwidth
    t_l2 = l2_bytes / device.l2.bandwidth
    t_dram = dram_bytes / (device.dram_bandwidth * _DRAM_SUSTAIN)
    t_total = max(t_issue_ideal, t_fma, t_l1, t_l2, t_dram)

    if profile.fused_epilogue:
        # SM activity inherited from the producing kernel's pipeline,
        # derated by any DRAM stall this kernel itself exposes
        exposed = max(0.0, t_dram - max(t_issue_ideal, t_fma, t_l1, t_l2))
        compute_pct = 95.0 * (1.0 - exposed / t_total)
    else:
        compute_pct = 100.0 * max(t_issue_ideal, t_fma_ideal) / t_total
    alu_pct = profile.fp_inst_share * compute_pct
    l1_pct = 100.0 * t_l1 / t_total
    l2_pct = 100.0 * t_l2 / t_total
    dram_pct = 100.0 * (dram_bytes / device.dram_bandwidth) / t_total

    return KernelCounters(
        name=profile.name,
        kind=profile.kind,
        compute_throughput_pct=min(100.0, compute_pct),
        alu_utilization_pct=min(100.0, alu_pct),
        l1_throughput_pct=min(100.0, l1_pct),
        l2_throughput_pct=min(100.0, l2_pct),
        l1_hit_rate_pct=100.0 * stats.l1.hit_rate,
        l2_hit_rate_pct=100.0 * stats.l2.hit_rate,
        dram_bw_utilization_pct=min(100.0, dram_pct),
    )
