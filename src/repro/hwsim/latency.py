"""Analytic latency projection of traces onto devices.

Replaces the paper's wall-clock measurement: each trace event is
projected onto a :class:`~repro.hwsim.device.DeviceSpec` with a
roofline-style model,

    t = max(flops / (peak * eff_c), bytes / (bw * eff_m)) + launch,

where ``eff_c`` is the category- and size-dependent sustained compute
efficiency (GEMM/conv near peak; vector-symbolic, transform and logic
ops far below it) and ``eff_m`` the sustained bandwidth fraction of the
category's access pattern.  Host<->device transfer ops (``to_gpu`` /
``to_host``) are charged to the PCIe link instead of DRAM.

The projection makes the paper's core asymmetry emerge from first
principles: symbolic events have low arithmetic intensity, so their
projected time is bandwidth-dominated, while neural GEMM/conv events
are compute-dominated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.profiler import Trace, TraceEvent
from repro.core.taxonomy import OpCategory
from repro.hwsim.device import DeviceSpec


@dataclass
class EventCost:
    """Projected execution cost of one event on one device."""

    event: TraceEvent
    compute_time: float
    memory_time: float
    overhead: float

    @property
    def total(self) -> float:
        return max(self.compute_time, self.memory_time) + self.overhead

    @property
    def bound(self) -> str:
        """``"compute"`` or ``"memory"`` — which roof limits the event."""
        return "compute" if self.compute_time >= self.memory_time else "memory"

    @property
    def achieved_flops_rate(self) -> float:
        """FLOP/s actually sustained under the projection."""
        total = self.total
        if total <= 0:
            return 0.0
        return self.event.flops / total


class ProjectedTrace:
    """A trace with per-event latency projections for one device."""

    def __init__(self, trace: Trace, device: DeviceSpec,
                 costs: Sequence[EventCost]):
        self.trace = trace
        self.device = device
        self.costs = list(costs)

    @property
    def total_time(self) -> float:
        return sum(c.total for c in self.costs)

    def time_by_phase(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for cost in self.costs:
            phase = cost.event.phase
            out[phase] = out.get(phase, 0.0) + cost.total
        return out

    def time_by_stage(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for cost in self.costs:
            stage = cost.event.stage or "<untagged>"
            out[stage] = out.get(stage, 0.0) + cost.total
        return out

    def time_by_category(self, phase: Optional[str] = None) -> Dict[OpCategory, float]:
        out: Dict[OpCategory, float] = {}
        for cost in self.costs:
            if phase is not None and cost.event.phase != phase:
                continue
            cat = cost.event.category
            out[cat] = out.get(cat, 0.0) + cost.total
        return out

    def memory_bound_fraction(self, phase: Optional[str] = None) -> float:
        """Fraction of projected time spent in memory-bound events."""
        total = 0.0
        bound = 0.0
        for cost in self.costs:
            if phase is not None and cost.event.phase != phase:
                continue
            total += cost.total
            if cost.bound == "memory":
                bound += cost.total
        return bound / total if total > 0 else 0.0


def project_event(event: TraceEvent, device: DeviceSpec) -> EventCost:
    """Project one event's latency onto ``device``."""
    eff_c = device.compute_efficiency(event.category, event.flops)
    compute_time = (event.flops / (device.peak_flops * eff_c)
                    if event.flops > 0 and eff_c > 0 else 0.0)

    is_host_transfer = (event.category is OpCategory.MOVEMENT
                        and event.name.startswith(("to_gpu", "to_host",
                                                   "to_device")))
    if is_host_transfer and device.host_transfer_bandwidth > 0:
        memory_time = event.total_bytes / device.host_transfer_bandwidth
    else:
        eff_m = device.bandwidth_efficiency(event.category)
        memory_time = (event.total_bytes / (device.dram_bandwidth * eff_m)
                       if event.total_bytes > 0 and eff_m > 0 else 0.0)

    return EventCost(event=event, compute_time=compute_time,
                     memory_time=memory_time,
                     overhead=device.kernel_launch_overhead)


def project_trace(trace: Trace, device: DeviceSpec) -> ProjectedTrace:
    """Project a whole trace onto ``device``."""
    costs = [project_event(e, device) for e in trace]
    return ProjectedTrace(trace, device, costs)
