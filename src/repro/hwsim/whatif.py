"""What-if models for the paper's cross-layer recommendations.

The paper closes each characterization section with an optimization
recommendation (Sec. V).  This module makes them quantitative: each
what-if transforms either the *device model* or the *trace* and the
standard latency projection measures the effect.

* Rec. 2/6 (architecture) — :func:`symbolic_accelerator`: a custom
  vector-symbolic/logic processing unit raises the sustained
  efficiency of element-wise, transform and "Others" categories and
  cuts per-kernel launch overhead (fused dispatch).
* Rec. 3 (algorithm) — :func:`quantize_trace` (model compression:
  bytes scale with precision) and :func:`prune_trace` (sparsity-aware
  execution: FLOPs and bytes of highly-sparse outputs shrink with
  their measured sparsity).
* Rec. 4 (technology) — :func:`compute_in_memory`: CIM executes
  low-intensity symbolic categories inside the memory arrays,
  multiplying the bandwidth those categories can draw.
* Rec. 5 (system) — :func:`parallel_schedule_bound`: adaptive
  neural/symbolic co-scheduling is bounded by the operation graph's
  latency-weighted critical path; the function returns the achievable
  speedup bound.
* Rec. 6 (NoC) — :func:`scale_bandwidth`: a higher-bandwidth
  NoC/memory system scales the DRAM roof.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional

from repro.core.profiler import Trace, TraceEvent
from repro.core.taxonomy import OpCategory
from repro.hwsim.device import DeviceSpec

#: categories a symbolic processing unit accelerates
SYMBOLIC_CATEGORIES = (OpCategory.ELEMENTWISE, OpCategory.TRANSFORM,
                       OpCategory.OTHER)


def _replace_efficiencies(device: DeviceSpec, name: str,
                          compute: Dict[OpCategory, float],
                          memory: Dict[OpCategory, float],
                          launch_overhead: Optional[float] = None,
                          dram_bandwidth: Optional[float] = None
                          ) -> DeviceSpec:
    return dataclasses.replace(
        device,
        name=name,
        category_efficiency=compute,
        memory_efficiency=memory,
        kernel_launch_overhead=(device.kernel_launch_overhead
                                if launch_overhead is None
                                else launch_overhead),
        dram_bandwidth=(device.dram_bandwidth if dram_bandwidth is None
                        else dram_bandwidth),
    )


def symbolic_accelerator(device: DeviceSpec,
                         compute_boost: float = 8.0,
                         launch_reduction: float = 10.0) -> DeviceSpec:
    """Rec. 2/6: custom processing units for symbolic operations.

    Raises the sustained compute efficiency of the symbolic categories
    (capped at the GEMM efficiency — a dedicated unit can at best be as
    well-utilized as a systolic GEMM array) and divides the kernel
    launch overhead (fused/streamed dispatch of the many small symbolic
    kernels).
    """
    if compute_boost < 1.0 or launch_reduction < 1.0:
        raise ValueError("boosts must be >= 1")
    cap = max(device.category_efficiency.values())
    compute = dict(device.category_efficiency)
    memory = dict(device.memory_efficiency)
    for category in SYMBOLIC_CATEGORIES:
        compute[category] = min(cap, compute[category] * compute_boost)
        memory[category] = min(0.9, memory[category] * 1.5)
    return _replace_efficiencies(
        device, f"{device.name} + symbolic unit", compute, memory,
        launch_overhead=device.kernel_launch_overhead / launch_reduction)


def compute_in_memory(device: DeviceSpec,
                      bandwidth_multiplier: float = 8.0) -> DeviceSpec:
    """Rec. 4: CIM arrays execute low-intensity symbolic ops in place,
    multiplying the bandwidth available to those categories (modeled
    as memory-efficiency values above 1: the op draws more than the
    DRAM pin bandwidth because the movement never leaves the array)."""
    if bandwidth_multiplier < 1.0:
        raise ValueError("bandwidth multiplier must be >= 1")
    memory = dict(device.memory_efficiency)
    for category in SYMBOLIC_CATEGORIES:
        memory[category] = memory[category] * bandwidth_multiplier
    return _replace_efficiencies(
        device, f"{device.name} + CIM", dict(device.category_efficiency),
        memory)


def scale_bandwidth(device: DeviceSpec, factor: float) -> DeviceSpec:
    """Rec. 6: a higher-bandwidth NoC/memory system."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    return _replace_efficiencies(
        device, f"{device.name} x{factor:g} BW",
        dict(device.category_efficiency), dict(device.memory_efficiency),
        dram_bandwidth=device.dram_bandwidth * factor)


def quantize_trace(trace: Trace, bits: int = 8) -> Trace:
    """Rec. 3 (compression): re-express the trace at reduced precision.

    Bytes scale by ``bits/32`` (FP32 baseline); FLOP counts are
    unchanged (the same arithmetic occurs at lower precision).
    """
    if bits <= 0 or bits > 32:
        raise ValueError("bits must be in (0, 32]")
    scale = bits / 32.0
    out = Trace(f"{trace.workload}@int{bits}")
    out.metadata = dict(trace.metadata)
    for event in trace:
        out.append(dataclasses.replace(
            event,
            bytes_read=int(event.bytes_read * scale),
            bytes_written=int(event.bytes_written * scale),
        ))
    return out


def prune_trace(trace: Trace, min_sparsity: float = 0.5) -> Trace:
    """Rec. 3/7 (sparsity-aware execution): events whose outputs are
    measured to be at least ``min_sparsity`` sparse execute only their
    dense fraction of FLOPs and write traffic."""
    if not 0.0 <= min_sparsity <= 1.0:
        raise ValueError("min_sparsity must be in [0, 1]")
    out = Trace(f"{trace.workload}+pruned")
    out.metadata = dict(trace.metadata)
    for event in trace:
        if event.output_sparsity >= min_sparsity:
            dense = 1.0 - event.output_sparsity
            out.append(dataclasses.replace(
                event,
                flops=event.flops * dense,
                bytes_written=int(event.bytes_written * dense),
            ))
        else:
            out.append(dataclasses.replace(event))
    return out


def parallel_schedule_bound(trace: Trace, device: DeviceSpec) -> float:
    """Rec. 5: the speedup bound of adaptive neural/symbolic
    co-scheduling — serial time over the operation graph's
    latency-weighted critical path."""
    from repro.core.opgraph import analyze_graph
    report = analyze_graph(trace, device)
    if report.critical_path_time <= 0:
        return 1.0
    return report.total_time / report.critical_path_time
