"""Crash corpus: minimized failing cases, serialized and replayable.

Every divergence the oracle or chaos checker finds becomes a
:class:`CrashEntry` — the seed, the (minimized) program or chaos
config, and the divergences observed — appended to a JSONL corpus.
``repro fuzz replay`` re-executes entries from the corpus and reports
whether each failure still reproduces, which is both the debugging
loop and the regression gate for previously-found bugs.

Minimization is a greedy backward pass: drop any node no later node
depends on, re-run the oracle, keep the drop if the program still
diverges.  Deterministic by construction (fixed iteration order, the
oracle itself is two-run-checked), so a minimized repro is stable
across machines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.fuzz.chaos import ChaosConfig, run_chaos_schedule, run_live_chaos
from repro.fuzz.generate import OpNode, OpProgram
from repro.fuzz.oracle import CheckResult, Divergence, check_program
from repro.fuzz.rules import RuleSet

KIND_PROGRAM = "program"
KIND_CHAOS = "chaos"
KIND_WORKLOAD_CONFIG = "workload_config"


@dataclass
class CrashEntry:
    """One reproducible failure."""

    kind: str                          # program | chaos | workload_config
    seed: int
    payload: Dict[str, object]         # program dict / chaos config / params
    divergences: List[Divergence] = field(default_factory=list)
    minimized: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "seed": self.seed,
                "payload": self.payload,
                "divergences": [d.to_dict() for d in self.divergences],
                "minimized": self.minimized}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CrashEntry":
        return cls(kind=str(data["kind"]),
                   seed=int(data["seed"]),  # type: ignore[arg-type]
                   payload=dict(data["payload"]),  # type: ignore[arg-type]
                   divergences=[Divergence.from_dict(d)
                                for d in data.get("divergences", ())],  # type: ignore[union-attr]
                   minimized=bool(data.get("minimized", False)))


def save_corpus(entries: Sequence[CrashEntry], path: str) -> None:
    with open(path, "w") as handle:
        for entry in entries:
            handle.write(json.dumps(entry.to_dict(), sort_keys=True,
                                    separators=(",", ":")) + "\n")


def load_corpus(path: str) -> List[CrashEntry]:
    out: List[CrashEntry] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(CrashEntry.from_dict(json.loads(line)))
    return out


# ---------------------------------------------------------------------------
# minimization
# ---------------------------------------------------------------------------

def _live_nids(nodes: Sequence[OpNode]) -> set:
    """nids some surviving node consumes as input."""
    used: set = set()
    for node in nodes:
        used.update(node.inputs)
    return used


def _prune_leaves(program: OpProgram) -> OpProgram:
    """Drop leaves no surviving node reads (nids are preserved)."""
    used = _live_nids(program.nodes)
    return OpProgram(seed=program.seed,
                     leaves=[l for l in program.leaves if l.nid in used],
                     nodes=list(program.nodes))


def minimize_program(program: OpProgram,
                     rules: Optional[RuleSet] = None,
                     max_rounds: int = 8,
                     compiled: bool = False) -> OpProgram:
    """Greedy 1-node reduction preserving at least one divergence."""
    baseline = check_program(program, rules, compiled=compiled)
    if baseline.ok:
        return program
    current = program
    for _ in range(max_rounds):
        shrunk = False
        for index in range(len(current.nodes) - 1, -1, -1):
            candidate_nodes = (current.nodes[:index]
                               + current.nodes[index + 1:])
            victim = current.nodes[index]
            if victim.nid in _live_nids(candidate_nodes):
                continue       # a later node consumes this output
            candidate = _prune_leaves(OpProgram(
                seed=current.seed, leaves=list(current.leaves),
                nodes=list(candidate_nodes)))
            if not check_program(candidate, rules,
                                 compiled=compiled).ok:
                current = candidate
                shrunk = True
        if not shrunk:
            break
    return current


def entry_for_program(result: CheckResult,
                      rules: Optional[RuleSet] = None,
                      minimize: bool = True,
                      compiled: bool = False) -> CrashEntry:
    """Build the corpus entry for a divergent program check."""
    program = result.program
    minimized = False
    if minimize:
        reduced = minimize_program(program, rules, compiled=compiled)
        minimized = len(reduced.nodes) < len(program.nodes)
        program = reduced
        if minimized:
            result = check_program(program, rules, compiled=compiled)
    return CrashEntry(kind=KIND_PROGRAM, seed=program.seed,
                      payload=program.to_dict(),
                      divergences=list(result.divergences),
                      minimized=minimized)


def entry_for_chaos(config: ChaosConfig,
                    issues: Sequence[str]) -> CrashEntry:
    return CrashEntry(
        kind=KIND_CHAOS, seed=config.seed,
        payload={"seed": config.seed, "requests": config.requests,
                 "workers": config.workers,
                 "max_depth": config.max_depth,
                 "max_retries": config.max_retries,
                 "timeout": config.timeout},
        divergences=[Divergence(kind="chaos", op="serve", detail=issue)
                     for issue in issues])


def entry_for_workload_config(name: str, seed: int,
                              params: Dict[str, object],
                              error: str) -> CrashEntry:
    return CrashEntry(
        kind=KIND_WORKLOAD_CONFIG, seed=seed,
        payload={"workload": name, "params": params},
        divergences=[Divergence(kind="workload_crash", op=name,
                                detail=error)])


# ---------------------------------------------------------------------------
# replay
# ---------------------------------------------------------------------------

@dataclass
class ReplayResult:
    """Outcome of replaying one corpus entry."""

    entry: CrashEntry
    reproduced: bool
    detail: str = ""


def replay_entry(entry: CrashEntry,
                 rules: Optional[RuleSet] = None,
                 compiled: bool = False) -> ReplayResult:
    """Re-execute a corpus entry; reproduced = still failing."""
    if entry.kind == KIND_PROGRAM:
        program = OpProgram.from_dict(entry.payload)  # type: ignore[arg-type]
        # entries carrying a compiled divergence need the compiled
        # differential re-run to reproduce
        compiled = compiled or any(
            d.kind == "compiled_divergence" for d in entry.divergences)
        result = check_program(program, rules, compiled=compiled)
        detail = "; ".join(
            f"{d.kind}:{d.op}" for d in result.divergences) or "clean"
        return ReplayResult(entry=entry,
                            reproduced=not result.ok, detail=detail)
    if entry.kind == KIND_CHAOS:
        payload = entry.payload
        config = ChaosConfig(
            seed=int(payload["seed"]),  # type: ignore[arg-type]
            requests=int(payload.get("requests", 10)),  # type: ignore[arg-type]
            workers=int(payload.get("workers", 2)),  # type: ignore[arg-type]
            max_depth=int(payload.get("max_depth", 4)),  # type: ignore[arg-type]
            max_retries=int(payload.get("max_retries", 1)),  # type: ignore[arg-type]
            timeout=(None if payload.get("timeout") is None
                     else float(payload["timeout"])))  # type: ignore[arg-type]
        report = run_chaos_schedule(config)
        issues = list(report.issues)
        issues.extend(run_live_chaos(config))
        return ReplayResult(entry=entry, reproduced=bool(issues),
                            detail="; ".join(issues) or "clean")
    if entry.kind == KIND_WORKLOAD_CONFIG:
        from repro.fuzz.harvest import harvest_workload
        name = str(entry.payload["workload"])
        params = dict(entry.payload.get("params", {}))  # type: ignore[arg-type]
        try:
            harvest_workload(name, seed=entry.seed, **params)
        except Exception as exc:  # noqa: BLE001 - replaying a crash
            return ReplayResult(entry=entry, reproduced=True,
                                detail=f"{type(exc).__name__}: {exc}")
        return ReplayResult(entry=entry, reproduced=False, detail="clean")
    return ReplayResult(entry=entry, reproduced=False,
                        detail=f"unknown corpus kind {entry.kind!r}")
