"""``repro fuzz`` — run campaigns, replay the corpus, inspect rules.

Exit codes:

* ``fuzz run``    — 0 clean, **5** when divergences were found (the
  corpus, if a path was given, holds the repros);
* ``fuzz replay`` — 0 when every corpus entry still reproduces, 1
  when at least one no longer fails (fixed or flaky);
* ``fuzz rules``  — always 0.
"""

from __future__ import annotations

import argparse
from typing import Optional

EXIT_DIVERGENCE = 5


def _parse_harvest(raw: Optional[str]):
    if not raw:
        return None
    return tuple(name.strip() for name in raw.split(",") if name.strip())


def add_fuzz_subcommands(sub: "argparse._SubParsersAction") -> None:
    fuzz = sub.add_parser(
        "fuzz",
        help="operator-rule-inference fuzzing with differential "
             "execution checking")
    fsub = fuzz.add_subparsers(dest="fuzz_command", required=True)

    run = fsub.add_parser(
        "run", help="infer rules, then fuzz programs/chaos/configs")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--count", type=int, default=50,
                     help="generated op programs to check (default 50)")
    run.add_argument("--max-ops", type=int, default=12,
                     help="max ops per generated program")
    run.add_argument("--harvest", default=None,
                     help="comma-separated workloads to harvest "
                          "(default: lnn,nvsa)")
    run.add_argument("--chaos", type=int, default=0,
                     help="seeded serve chaos schedules to run")
    run.add_argument("--configs", type=int, default=0,
                     help="boundary workload configs to harvest")
    run.add_argument("--rules", default=None,
                     help="load rules from this JSON instead of "
                          "harvesting")
    run.add_argument("--corpus", default=None,
                     help="write failing cases to this JSONL path")
    run.add_argument("--no-minimize", action="store_true",
                     help="skip crash minimization")
    run.add_argument("--compiled", action="store_true",
                     help="add the eager-vs-compiled differential to "
                          "every program check (repro.compile)")

    replay = fsub.add_parser(
        "replay", help="re-execute corpus entries; do they still fail?")
    replay.add_argument("corpus", help="crash corpus JSONL path")
    replay.add_argument("--entry", type=int, default=None,
                        help="replay only this entry index")
    replay.add_argument("--rules", default=None,
                        help="rule-set JSON for program entries "
                             "(default: re-infer)")

    rules_cmd = fsub.add_parser(
        "rules", help="infer transfer rules and print/save them")
    rules_cmd.add_argument("--harvest", default=None,
                           help="comma-separated workloads "
                                "(default: lnn,nvsa)")
    rules_cmd.add_argument("--seed", type=int, default=0)
    rules_cmd.add_argument("--no-calibrate", action="store_true",
                           help="infer from the workload harvest only")
    rules_cmd.add_argument("--format", choices=("text", "json"),
                           default="text")
    rules_cmd.add_argument("-o", "--output", default=None,
                           help="write the rule set JSON here")


def run_fuzz_command(args: "argparse.Namespace") -> int:
    from repro.fuzz.oracle import build_ruleset
    from repro.fuzz.rules import RuleSet

    if args.fuzz_command == "run":
        from repro.fuzz.corpus import save_corpus
        from repro.fuzz.runner import fuzz_run
        rules = RuleSet.load(args.rules) if args.rules else None
        report = fuzz_run(
            seed=args.seed, count=args.count, max_ops=args.max_ops,
            harvest=_parse_harvest(args.harvest), chaos=args.chaos,
            configs=args.configs, rules=rules,
            minimize=not args.no_minimize,
            compiled=getattr(args, "compiled", False))
        print(report.render())
        if args.corpus and report.entries:
            save_corpus(report.entries, args.corpus)
            print(f"wrote {len(report.entries)} repro(s) to "
                  f"{args.corpus}; replay with: "
                  f"python -m repro fuzz replay {args.corpus}")
        return 0 if report.ok else EXIT_DIVERGENCE

    if args.fuzz_command == "replay":
        from repro.fuzz.corpus import KIND_PROGRAM, load_corpus, replay_entry
        entries = load_corpus(args.corpus)
        if args.entry is not None:
            if not 0 <= args.entry < len(entries):
                raise SystemExit(
                    f"entry {args.entry} out of range "
                    f"(corpus has {len(entries)})")
            entries = [entries[args.entry]]
        rules = None
        if any(entry.kind == KIND_PROGRAM for entry in entries):
            rules = (RuleSet.load(args.rules) if args.rules
                     else build_ruleset())
        stale = 0
        for index, entry in enumerate(entries):
            result = replay_entry(entry, rules)
            verdict = "REPRODUCED" if result.reproduced else "clean"
            print(f"[{index}] {entry.kind} seed {entry.seed}: "
                  f"{verdict} — {result.detail}")
            if not result.reproduced:
                stale += 1
        print(f"{len(entries) - stale}/{len(entries)} entr"
              f"{'y' if len(entries) == 1 else 'ies'} still reproduce")
        return 0 if stale == 0 else 1

    if args.fuzz_command == "rules":
        ruleset = build_ruleset(_parse_harvest(args.harvest),
                                seed=args.seed,
                                calibrate=not args.no_calibrate)
        if args.output:
            ruleset.save(args.output)
            print(f"wrote {len(ruleset)} rules to {args.output}")
        if args.format == "json":
            print(ruleset.to_json())
        else:
            print(ruleset.render())
        return 0

    raise SystemExit(f"unhandled fuzz command {args.fuzz_command!r}")
