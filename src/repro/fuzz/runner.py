"""Top-level fuzzing campaigns: programs, chaos schedules, configs.

One :func:`fuzz_run` call is a complete campaign:

1. infer (or load) the transfer-rule set — harvest + calibration;
2. generate and differentially check ``count`` seeded op programs;
3. run ``chaos`` seeded fault/rejection schedules through the server;
4. harvest ``configs`` boundary workload configurations.

Every failure is minimized and appended to a crash corpus; the report
renders a one-screen summary and carries everything the CLI and CI
need (exit status, corpus entries, per-kind tallies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.fuzz.chaos import fuzz_chaos
from repro.fuzz.corpus import (CrashEntry, entry_for_chaos,
                               entry_for_program,
                               entry_for_workload_config)
from repro.fuzz.generate import generate_program, perturb_configs
from repro.fuzz.oracle import CheckResult, build_ruleset, check_program
from repro.fuzz.rules import RuleSet

#: stride between campaign seed and per-program seeds; keeps distinct
#: campaign seeds from overlapping program streams for small counts
_PROGRAM_SEED_STRIDE = 1_000_003


@dataclass
class FuzzReport:
    """Everything one fuzzing campaign produced."""

    seed: int
    rules: RuleSet
    checked: int = 0
    statuses: Dict[str, int] = field(default_factory=dict)
    divergent: List[CheckResult] = field(default_factory=list)
    chaos_run: int = 0
    chaos_failed: int = 0
    configs_run: int = 0
    config_crashes: int = 0
    entries: List[CrashEntry] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.entries

    def render(self) -> str:
        lines = [f"fuzz campaign (seed {self.seed}): "
                 f"{len(self.rules)} op rules"]
        tally = ", ".join(f"{status}={count}" for status, count
                          in sorted(self.statuses.items()))
        lines.append(f"  programs   {self.checked} checked ({tally})")
        if self.chaos_run:
            lines.append(f"  chaos      {self.chaos_run} schedules, "
                         f"{self.chaos_failed} with violations")
        if self.configs_run:
            lines.append(f"  configs    {self.configs_run} boundary "
                         f"configs, {self.config_crashes} crashes")
        if self.entries:
            lines.append(f"  corpus     {len(self.entries)} failing "
                         f"case(s):")
            for entry in self.entries:
                kinds = ", ".join(sorted({d.kind
                                          for d in entry.divergences}))
                lines.append(f"    [{entry.kind}] seed {entry.seed}: "
                             f"{kinds}")
        else:
            lines.append("  corpus     empty — no divergences")
        return "\n".join(lines)


def fuzz_run(seed: int = 0, count: int = 50, max_ops: int = 12,
             harvest: Optional[Sequence[str]] = None,
             chaos: int = 0, configs: int = 0,
             rules: Optional[RuleSet] = None,
             minimize: bool = True,
             compiled: bool = False) -> FuzzReport:
    """Run a full campaign; see the module docstring for the stages.

    ``compiled=True`` adds the eager-vs-compiled differential to every
    program check (:func:`repro.fuzz.oracle.check_program`).
    """
    ruleset = rules if rules is not None else build_ruleset(
        harvest, seed=seed)
    report = FuzzReport(seed=seed, rules=ruleset)

    base = seed * _PROGRAM_SEED_STRIDE
    for index in range(count):
        program = generate_program(base + index, max_ops=max_ops)
        result = check_program(program, ruleset, compiled=compiled)
        report.checked += 1
        report.statuses[result.status] = (
            report.statuses.get(result.status, 0) + 1)
        if not result.ok:
            report.divergent.append(result)
            report.entries.append(
                entry_for_program(result, ruleset, minimize=minimize,
                                  compiled=compiled))

    if chaos:
        for chaos_report in fuzz_chaos(seed, chaos):
            report.chaos_run += 1
            if not chaos_report.ok:
                report.chaos_failed += 1
                report.entries.append(entry_for_chaos(
                    chaos_report.config, chaos_report.issues))

    if configs:
        from repro.fuzz.harvest import harvest_workload
        for name, params in perturb_configs(seed, configs):
            report.configs_run += 1
            try:
                harvest_workload(name, seed=seed, **params)
            except ValueError:
                pass           # classified refusal (TensorOpError et al.)
            except Exception as exc:  # noqa: BLE001 - crash hunting
                report.config_crashes += 1
                report.entries.append(entry_for_workload_config(
                    name, seed, dict(params),
                    f"{type(exc).__name__}: {exc}"))

    return report
