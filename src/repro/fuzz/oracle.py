"""Differential execution oracle for generated op programs.

Each generated :class:`~repro.fuzz.generate.OpProgram` is executed
**twice**, eagerly, under profiling plus the op-observer hook.  The
oracle then cross-checks four independent sources of truth:

1. **template predictions** — every node carries the expected output
   shape/dtype from its generation template; the realized tensor must
   match exactly (this is the eager-vs-static differential check);
2. **inferred rules** — every harvested instance must satisfy the
   shape/dtype/counter transfer rules fitted by
   :mod:`repro.fuzz.rules` over the workload harvest + calibration
   corpus;
3. **trace structure** — the recorded trace must pass
   :func:`repro.core.validate.validate_trace` (finite, non-negative,
   causally ordered counters);
4. **determinism** — both runs must produce byte-identical counter
   digests and identical terminal states.

A :class:`TensorOpError` raised mid-program is a *classified stop*
(the runtime refused degenerate input with a typed error): the program
prefix that did execute is still checked, but the stop itself is not a
failure.  Any other exception is a **crash divergence** — the runtime
let an unclassified error escape.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import tensor as T
from repro.core.validate import validate_trace
from repro.fuzz.generate import (LeafSpec, OpProgram, calibration_programs,
                                 op_universe)
from repro.fuzz.harvest import (DEFAULT_HARVEST, OpInstanceRecorder,
                                harvest_roster)
from repro.fuzz.records import OpInstance, filter_instances
from repro.fuzz.rules import RuleSet, infer_rules
from repro.tensor.context import op_observer
from repro.tensor.errors import TensorOpError

Shape = Tuple[int, ...]


# ---------------------------------------------------------------------------
# leaf materialization
# ---------------------------------------------------------------------------

def materialize_leaf(program_seed: int, leaf: LeafSpec) -> np.ndarray:
    """Deterministic leaf values from ``default_rng([seed, nid])``."""
    rng = np.random.default_rng([program_seed, leaf.nid])
    if leaf.dist == "normal":
        arr = rng.normal(size=leaf.shape)
    elif leaf.dist == "unit":
        arr = rng.random(size=leaf.shape)
    elif leaf.dist == "offset":           # bounded away from zero
        arr = 0.5 + rng.random(size=leaf.shape)
    elif leaf.dist == "bool":
        return rng.random(size=leaf.shape) < 0.5
    elif leaf.dist == "indices":
        if leaf.high > 0:
            arr = rng.integers(0, leaf.high, size=leaf.shape)
        else:                              # empty domain: only size-0 valid
            arr = np.zeros(leaf.shape, dtype=np.int64)
    else:
        raise ValueError(f"unknown leaf dist {leaf.dist!r}")
    return arr.astype(leaf.dtype, copy=False)


# ---------------------------------------------------------------------------
# node application
# ---------------------------------------------------------------------------

def _apply_node(node, values: Dict[int, "T.Tensor"]) -> Optional["T.Tensor"]:
    """Execute one node against realized inputs; returns its Tensor."""
    ins = [values[nid] for nid in node.inputs]
    params = node.param_dict()
    if node.op == "split":
        parts = T.split(ins[0], int(params["sections"]),
                        axis=int(params["axis"]))
        return parts[int(params["part"])]
    if node.op == "einsum":
        return T.einsum(str(params["spec"]), *ins)
    if node.op in ("concat", "stack"):
        fn = getattr(T, node.op)
        return fn(ins, axis=int(params["axis"]))
    if node.op == "conv2d":
        bias = ins[2] if params.get("bias") else None
        return T.conv2d(ins[0], ins[1], bias=bias,
                        stride=int(params["stride"]),
                        padding=int(params["padding"]))
    fn = getattr(T, node.op)
    return fn(*ins, **params)


@dataclass
class ExecutionResult:
    """One eager run of a program: instances, terminal state, trace."""

    program: OpProgram
    instances: List[OpInstance] = field(default_factory=list)
    realized: Dict[int, Tuple[Shape, str]] = field(default_factory=dict)
    status: str = "ok"                 # ok | classified | crash
    error: str = ""
    error_op: str = ""
    trace_errors: List[str] = field(default_factory=list)


def _run_program(program: OpProgram, result: ExecutionResult,
                 divergence_types: Tuple[type, ...] = ()) -> None:
    """Execute a program's nodes, recording terminal state on ``result``.

    ``divergence_types`` names exception classes that mark a *replay
    divergence* rather than a crash (the compiled differential passes
    :class:`~repro.compile.plan.PlanDivergenceError` here).
    """
    values: Dict[int, T.Tensor] = {}
    for leaf in program.leaves:
        values[leaf.nid] = T.tensor(
            materialize_leaf(program.seed, leaf))
    for node in program.nodes:
        try:
            out = _apply_node(node, values)
        except divergence_types as exc:
            result.status = "plan_divergence"
            result.error = str(exc)
            result.error_op = node.op
            break
        except TensorOpError as exc:
            result.status = "classified"
            result.error = str(exc)
            result.error_op = node.op
            break
        except Exception as exc:  # noqa: BLE001 - the whole point
            result.status = "crash"
            result.error = f"{type(exc).__name__}: {exc}"
            result.error_op = node.op
            break
        values[node.nid] = out
        result.realized[node.nid] = (
            tuple(out.shape), str(out.dtype))


def execute_program(program: OpProgram) -> ExecutionResult:
    """Run a program eagerly under profiling + the op observer."""
    result = ExecutionResult(program=program)
    recorder = OpInstanceRecorder(workload="fuzz")
    with T.profile("fuzz") as prof:
        with op_observer(recorder):
            _run_program(program, result)
    result.instances = recorder.instances
    if recorder.instances:     # empty programs have nothing to validate
        result.trace_errors = validate_trace(
            prof.trace, require_flops=False).errors
    return result


def execute_program_compiled(program: OpProgram) -> ExecutionResult:
    """Capture a plan from one eager run, then replay it compiled.

    The capture run executes the program eagerly under a
    :class:`~repro.compile.capture.PlanCapturer`; the replay runs the
    *same program source* through a plan session, so every dispatched
    op is served positionally from the plan.  A classified stop is
    reproduced at the same node by construction (identical inputs);
    a replay that walks off the plan surfaces as status
    ``plan_divergence``.  Raises
    :class:`~repro.compile.plan.PlanCaptureError` when the capture run
    itself cannot be planned.
    """
    from repro.compile.capture import PlanCapturer, capture_program_plan
    from repro.compile.executor import plan_session
    from repro.compile.plan import PlanDivergenceError

    capture_result = ExecutionResult(program=program)
    capturer = PlanCapturer()
    with T.profile("fuzz") as prof:
        with op_observer(capturer):
            _run_program(program, capture_result)
    plan = capture_program_plan(prof.trace, capturer, workload="fuzz")

    result = ExecutionResult(program=program)
    recorder = OpInstanceRecorder(workload="fuzz")
    try:
        with T.profile("fuzz") as prof:
            with plan_session(plan):
                with op_observer(recorder):
                    _run_program(program, result,
                                 divergence_types=(PlanDivergenceError,))
    except PlanDivergenceError as exc:
        # an over/underrun raised outside a node application (e.g. on
        # session bookkeeping) still counts as a replay divergence
        result.status = "plan_divergence"
        result.error = str(exc)
    result.instances = recorder.instances
    if recorder.instances:
        result.trace_errors = validate_trace(
            prof.trace, require_flops=False).errors
    return result


# ---------------------------------------------------------------------------
# digests and divergences
# ---------------------------------------------------------------------------

def counter_digest(instances: Sequence[OpInstance]) -> str:
    """SHA-256 over the canonical JSON of instances in execution order."""
    digest = hashlib.sha256()
    for inst in instances:
        digest.update(json.dumps(inst.to_dict(), sort_keys=True,
                                 separators=(",", ":")).encode())
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass
class Divergence:
    """One checked invariant the execution violated."""

    kind: str      # crash | shape_mismatch | dtype_mismatch |
                   # rule_violation | trace_invalid | nondeterminism |
                   # compiled_divergence
    op: str        # op involved ("" for whole-program kinds)
    detail: str

    def to_dict(self) -> Dict[str, str]:
        return {"kind": self.kind, "op": self.op, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "Divergence":
        return cls(kind=str(data["kind"]), op=str(data.get("op", "")),
                   detail=str(data.get("detail", "")))


@dataclass
class CheckResult:
    """Oracle verdict for one program (two runs cross-checked)."""

    program: OpProgram
    status: str                        # ok | classified | divergent
    divergences: List[Divergence] = field(default_factory=list)
    digest: str = ""
    ops_executed: int = 0
    classified_error: str = ""

    @property
    def ok(self) -> bool:
        return not self.divergences


def check_program(program: OpProgram,
                  rules: Optional[RuleSet] = None,
                  compiled: bool = False) -> CheckResult:
    """Execute twice and cross-check all oracle invariants.

    ``compiled=True`` adds the eager-vs-compiled differential: a third
    eager run captures a :class:`~repro.compile.plan.CompiledPlan` and
    the program is replayed through it — identical counter digests,
    realized shapes/dtypes, and terminal (classified) state are
    required, mirroring the subsystem's bit-exactness contract.
    """
    first = execute_program(program)
    second = execute_program(program)
    divergences: List[Divergence] = []

    if first.status == "crash":
        divergences.append(Divergence(
            kind="crash", op=first.error_op,
            detail=f"unclassified exception escaped: {first.error}"))

    digest_one = counter_digest(first.instances)
    digest_two = counter_digest(second.instances)
    if digest_one != digest_two:
        divergences.append(Divergence(
            kind="nondeterminism", op="",
            detail=f"counter digests differ across identical runs "
                   f"({digest_one[:12]} vs {digest_two[:12]})"))
    if (first.status, first.error) != (second.status, second.error):
        divergences.append(Divergence(
            kind="nondeterminism", op=first.error_op or second.error_op,
            detail=f"terminal state differs across runs: "
                   f"{first.status}/{first.error!r} vs "
                   f"{second.status}/{second.error!r}"))

    for issue in first.trace_errors:
        divergences.append(Divergence(kind="trace_invalid", op="",
                                      detail=issue))

    for node in program.nodes:
        realized = first.realized.get(node.nid)
        if realized is None or node.out_shape is None:
            continue           # dynamic-shape node, or stopped before it
        got_shape, got_dtype = realized
        if tuple(got_shape) != tuple(node.out_shape):
            divergences.append(Divergence(
                kind="shape_mismatch", op=node.op,
                detail=f"template predicted {tuple(node.out_shape)}, "
                       f"eager produced {tuple(got_shape)}"))
        if node.out_dtype is not None and got_dtype != node.out_dtype:
            divergences.append(Divergence(
                kind="dtype_mismatch", op=node.op,
                detail=f"template predicted {node.out_dtype}, "
                       f"eager produced {got_dtype}"))

    if rules is not None:
        for inst in first.instances:
            if inst.name not in rules:
                continue
            for issue in rules.check_instance(inst):
                divergences.append(Divergence(
                    kind="rule_violation", op=inst.name, detail=issue))

    if compiled and first.status != "crash":
        divergences.extend(_compiled_differential(program, first))

    if divergences:
        status = "divergent"
    elif first.status == "classified":
        status = "classified"
    else:
        status = "ok"
    return CheckResult(program=program, status=status,
                       divergences=divergences, digest=digest_one,
                       ops_executed=len(first.instances),
                       classified_error=first.error)


def _compiled_differential(program: OpProgram,
                           eager: ExecutionResult) -> List[Divergence]:
    """Eager-vs-compiled cross-check for one program.

    Compares the replay against the eager reference on the full
    bit-exactness surface: counter digests over the observed op
    instances, realized shape/dtype of every node, and the terminal
    (classified-stop) state.
    """
    from repro.compile.plan import PlanError
    try:
        replay = execute_program_compiled(program)
    except PlanError as exc:
        return [Divergence(
            kind="compiled_divergence", op="",
            detail=f"plan capture/replay machinery failed: {exc}")]
    out: List[Divergence] = []
    eager_digest = counter_digest(eager.instances)
    replay_digest = counter_digest(replay.instances)
    if eager_digest != replay_digest:
        out.append(Divergence(
            kind="compiled_divergence", op="",
            detail=f"counter digests differ eager vs compiled "
                   f"({eager_digest[:12]} vs {replay_digest[:12]})"))
    if (eager.status, eager.error) != (replay.status, replay.error):
        out.append(Divergence(
            kind="compiled_divergence",
            op=replay.error_op or eager.error_op,
            detail=f"terminal state differs eager vs compiled: "
                   f"{eager.status}/{eager.error!r} vs "
                   f"{replay.status}/{replay.error!r}"))
    for nid, realized in sorted(eager.realized.items()):
        got = replay.realized.get(nid)
        if got != realized:
            op = next((n.op for n in program.nodes if n.nid == nid), "")
            out.append(Divergence(
                kind="compiled_divergence", op=op,
                detail=f"node {nid} realized {realized} eagerly but "
                       f"{got} compiled"))
    return out


# ---------------------------------------------------------------------------
# rule-set construction (harvest + calibration)
# ---------------------------------------------------------------------------

def build_ruleset(harvest: Optional[Sequence[str]] = None,
                  seed: int = 0,
                  calibrate: bool = True) -> RuleSet:
    """Infer rules from the workload harvest plus a calibration sweep.

    The calibration sweep executes the generator's own per-op programs
    (seeds offset far from user fuzzing seeds) and folds their
    instances into inference.  Rules therefore generalize over the
    generator's shape distribution *before* fresh programs are judged
    against them — a relation that only held for one workload's shapes
    is pruned here instead of surfacing later as a false divergence.
    """
    names = tuple(harvest) if harvest is not None else DEFAULT_HARVEST
    instances = harvest_roster(names, seed=seed)
    if calibrate:
        for program in calibration_programs(seed):
            run = execute_program(program)
            # even classified stops contribute their executed prefix
            instances.extend(run.instances)
    kept, stats = filter_instances(instances)
    return infer_rules(kept, stats)


def harvested_universe(rules: RuleSet) -> List[str]:
    """Generatable registry keys backed by at least one inferred rule."""
    return op_universe(sorted(rules.rules))
