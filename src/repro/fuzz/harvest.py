"""Replay workloads under an op observer and harvest OpInstances.

The harvester is the "record finder" stage of the Dynofuzz pipeline:
it executes the real workload roster under the dispatcher's op-observer
hook (:func:`repro.tensor.context.op_observer`) and turns every
recorded kernel into an :class:`~repro.fuzz.records.OpInstance` —
including the dtypes and exact input byte counts that trace events
intentionally omit.

Harvesting runs the *existing* profiling path unchanged; the observer
is strictly read-only, so a harvested trace is bit-identical to an
unharvested one.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.taxonomy import canonical_op_name
from repro.fuzz.records import SCALAR_DTYPE, OpInstance
from repro.tensor.context import op_observer

#: default roster slice for harvesting: cheap to profile yet together
#: they exercise every operator family (conv/matmul/elementwise/FFT/
#: transform/movement/fuzzy/logic)
DEFAULT_HARVEST = ("lnn", "nvsa")


class OpInstanceRecorder:
    """Op observer that appends one :class:`OpInstance` per kernel."""

    def __init__(self, workload: str = ""):
        self.workload = workload
        self.instances: List[OpInstance] = []

    def observe_op(self, event, inputs: Sequence[object],
                   output: np.ndarray) -> None:
        dtypes: List[str] = []
        nbytes = 0
        for value in inputs:
            if isinstance(value, np.ndarray):
                dtypes.append(str(value.dtype))
                nbytes += value.nbytes
            else:           # python scalar: 8 bytes by dispatch convention
                dtypes.append(SCALAR_DTYPE)
                nbytes += 8
        self.instances.append(OpInstance(
            name=canonical_op_name(event.name),
            raw_name=event.name,
            category=event.category.value,
            input_shapes=tuple(tuple(s) for s in event.input_shapes),
            input_dtypes=tuple(dtypes),
            input_nbytes=nbytes,
            output_shape=tuple(event.output_shape),
            output_dtype=str(output.dtype),
            flops=float(event.flops),
            bytes_read=int(event.bytes_read),
            bytes_written=int(event.bytes_written),
            output_sparsity=float(event.output_sparsity),
            workload=self.workload,
            phase=event.phase,
        ))


def harvest_workload(name: str, seed: int = 0,
                     **params: object) -> List[OpInstance]:
    """Profile one workload under the recorder; returns its instances."""
    from repro.workloads import create
    workload = create(name, seed=seed, **params)
    workload.build()
    recorder = OpInstanceRecorder(workload=name)
    with op_observer(recorder):
        workload.profile()
    return recorder.instances


def harvest_roster(names: Optional[Iterable[str]] = None,
                   seed: int = 0) -> List[OpInstance]:
    """Harvest several workloads back to back (unfiltered)."""
    out: List[OpInstance] = []
    for name in (names if names is not None else DEFAULT_HARVEST):
        out.extend(harvest_workload(name, seed=seed))
    return out
