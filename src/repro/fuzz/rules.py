"""Per-op shape/dtype/counter transfer rules inferred from instances.

The Dynofuzz-style rule engine: for every canonical op it fits

* **shape relations** — structural predicates (identity, broadcast,
  rank/size preservation, matmul/FFT shape laws ...) kept only when
  they hold on *every* harvested instance of the op;
* **dtype relations** — output dtype preserved from the first input,
  or constant;
* **counter models** — exact symbolic fits of the recorded counters:
  ``flops = c * basis(instance)`` over a small basis-function library
  (output size, input size, matmul ``k * out``, n·log n, constant),
  and affine models for bytes read/written anchored on the exact
  input/output byte counts.

A rule survives only if it is consistent with **all** instances; where
no exact counter model fits, observed bounds are recorded instead
(reported by ``repro fuzz rules`` but not enforced by the oracle —
enforcing harvest-specific bounds on novel generated shapes would
manufacture false divergences).

The differential oracle (:mod:`repro.fuzz.oracle`) replays generated
programs and asserts every fresh instance still satisfies the
surviving rules.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fuzz.records import SCALAR_DTYPE, OpInstance

#: absolute + relative tolerance for counter-model equality: counters
#: are float64 arithmetic over exact integers, so this only absorbs
#: benign accumulation error, never a wrong model
_ATOL = 1e-6
_RTOL = 1e-9


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _ATOL + _RTOL * max(abs(a), abs(b))


def _shape_size(shape: Sequence[int]) -> int:
    size = 1
    for dim in shape:
        size *= dim
    return size


def _itemsize(dtype: str) -> int:
    if dtype == SCALAR_DTYPE:
        return 8
    return int(np.dtype(dtype).itemsize)


# ---------------------------------------------------------------------------
# shape relations
# ---------------------------------------------------------------------------

def _rel_identity(inst: OpInstance) -> bool:
    return bool(inst.input_shapes) and inst.output_shape == inst.input_shapes[0]


def _rel_broadcast(inst: OpInstance) -> bool:
    if not inst.input_shapes:
        return False
    try:
        return tuple(np.broadcast_shapes(*inst.input_shapes)) == inst.output_shape
    except ValueError:
        return False


def _rel_scalar_output(inst: OpInstance) -> bool:
    return inst.output_shape == ()


def _rel_rank_preserved(inst: OpInstance) -> bool:
    return (bool(inst.input_shapes)
            and len(inst.output_shape) == len(inst.input_shapes[0]))


def _rel_rank_le(inst: OpInstance) -> bool:
    return (bool(inst.input_shapes)
            and len(inst.output_shape) <= len(inst.input_shapes[0]))


def _rel_size_preserved(inst: OpInstance) -> bool:
    return (bool(inst.input_shapes)
            and inst.out_size == inst.input_size(0))


def _rel_size_le(inst: OpInstance) -> bool:
    if not inst.input_shapes:
        return False
    total = sum(inst.input_size(i) for i in range(len(inst.input_shapes)))
    if total == 0:
        # vacuous: reductions of empty inputs legally produce identity
        # elements (prod of zero elements is 1), so size comparison
        # carries no information
        return True
    return inst.out_size <= total


def _rel_last_dim_preserved(inst: OpInstance) -> bool:
    if not inst.input_shapes:
        return False
    if not inst.input_shapes[0] or not inst.output_shape:
        return True            # vacuous: one side has no last dim
    return inst.output_shape[-1] == inst.input_shapes[0][-1]


def _rel_matmul_shape(inst: OpInstance) -> bool:
    if len(inst.input_shapes) < 2:
        return False
    sa, sb = inst.input_shapes[0], inst.input_shapes[1]
    if not sa or not sb:
        return True            # vacuous: rank-0 operands never matmul
    if len(sa) == 1 and len(sb) == 1:
        return sa == sb and inst.output_shape == ()
    try:
        rows = sa[-2] if len(sa) >= 2 else ()
        cols = sb[-1] if len(sb) >= 2 else ()
        batch = tuple(np.broadcast_shapes(sa[:-2], sb[:-2]))
    except ValueError:
        return False
    core: Tuple[int, ...] = ()
    if len(sa) >= 2:
        core += (rows,)          # type: ignore[operator]
    if len(sb) >= 2:
        core += (cols,)          # type: ignore[operator]
    return inst.output_shape == batch + core


def _rel_rfft_half(inst: OpInstance) -> bool:
    if not inst.input_shapes:
        return False
    if not inst.input_shapes[0]:
        return True            # vacuous: no transform axis on rank-0
    sin = inst.input_shapes[0]
    return inst.output_shape == sin[:-1] + (sin[-1] // 2 + 1,)


#: name -> predicate; a relation survives iff true on every instance
SHAPE_RELATIONS: Dict[str, Callable[[OpInstance], bool]] = {
    "identity": _rel_identity,
    "broadcast": _rel_broadcast,
    "scalar_output": _rel_scalar_output,
    "rank_preserved": _rel_rank_preserved,
    "rank_le": _rel_rank_le,
    "size_preserved": _rel_size_preserved,
    "size_le_inputs": _rel_size_le,
    "last_dim_preserved": _rel_last_dim_preserved,
    "matmul_shape": _rel_matmul_shape,
    "rfft_half_spectrum": _rel_rfft_half,
}


# ---------------------------------------------------------------------------
# counter bases
# ---------------------------------------------------------------------------

def _basis_out_size(inst: OpInstance) -> Optional[float]:
    return float(inst.out_size)


def _basis_in0_size(inst: OpInstance) -> Optional[float]:
    return float(inst.input_size(0)) if inst.input_shapes else None


def _basis_in_total(inst: OpInstance) -> Optional[float]:
    if not inst.input_shapes:
        return None
    return float(sum(inst.input_size(i)
                     for i in range(len(inst.input_shapes))))


def _basis_matmul(inst: OpInstance) -> Optional[float]:
    if not inst.input_shapes or not inst.input_shapes[0]:
        return None
    k = inst.input_shapes[0][-1]
    if inst.output_shape == ():  # vector·vector: 2k flops ≡ k * 1 out elem
        return float(k)
    return float(k * inst.out_size)


def _basis_nlogn(inst: OpInstance) -> Optional[float]:
    if not inst.input_shapes or not inst.input_shapes[0]:
        return None
    n = inst.input_shapes[0][-1]
    return float(inst.input_size(0)) * math.log2(n if n > 1 else 2)


#: ordered: the first basis that fits exactly names the counter model
FLOP_BASES: Tuple[Tuple[str, Callable[[OpInstance], Optional[float]]], ...] = (
    ("out_size", _basis_out_size),
    ("in0_size", _basis_in0_size),
    ("in_total_size", _basis_in_total),
    ("matmul_k_out", _basis_matmul),
    ("nlogn_last", _basis_nlogn),
)


def _fit_linear(instances: Sequence[OpInstance],
                basis: Callable[[OpInstance], Optional[float]],
                value: Callable[[OpInstance], float]
                ) -> Optional[float]:
    """Coefficient c with value == c * basis on every instance, or None."""
    coeff: Optional[float] = None
    pairs: List[Tuple[float, float]] = []
    for inst in instances:
        b = basis(inst)
        if b is None:
            return None
        v = value(inst)
        if b == 0.0:
            if not _close(v, 0.0):
                return None
            continue
        if coeff is None:
            coeff = v / b
        pairs.append((b, v))
    if coeff is None:       # every basis value was 0: nothing to anchor on
        return None
    for b, v in pairs:
        if not _close(v, coeff * b):
            return None
    return coeff


def _fit_constant(instances: Sequence[OpInstance],
                  value: Callable[[OpInstance], float]) -> Optional[float]:
    first = value(instances[0])
    for inst in instances[1:]:
        if not _close(value(inst), first):
            return None
    return first


def _out_nbytes(inst: OpInstance) -> float:
    return float(inst.out_size * _itemsize(inst.output_dtype))


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------

@dataclass
class OpRule:
    """Everything inferred about one canonical op."""

    name: str
    category: str
    instances: int
    shape_relations: Tuple[str, ...] = ()
    dtype_rule: Optional[Tuple[str, str]] = None      # (kind, value)
    flops_model: Optional[Tuple[str, float]] = None   # (basis, coeff)
    flops_bounds: Optional[Tuple[float, float]] = None
    read_delta: Optional[float] = None    # bytes_read - input_nbytes
    written_delta: Optional[float] = None  # bytes_written - out_nbytes
    written_const: Optional[float] = None

    # -- checking -------------------------------------------------------------
    def check(self, inst: OpInstance) -> List[str]:
        """Violation messages for ``inst`` against the inferred rules."""
        problems: List[str] = []
        if not inst.finite():
            problems.append(
                f"{self.name}: non-finite counters (flops={inst.flops}, "
                f"sparsity={inst.output_sparsity})")
        if not 0.0 <= inst.output_sparsity <= 1.0 and math.isfinite(
                inst.output_sparsity):
            problems.append(
                f"{self.name}: sparsity {inst.output_sparsity} outside [0, 1]")
        for rel in self.shape_relations:
            if not SHAPE_RELATIONS[rel](inst):
                problems.append(
                    f"{self.name}: shape relation {rel!r} violated "
                    f"({inst.input_shapes} -> {inst.output_shape})")
        if self.dtype_rule is not None:
            kind, val = self.dtype_rule
            if kind == "preserved":
                if inst.input_dtypes and inst.output_dtype != inst.input_dtypes[0]:
                    problems.append(
                        f"{self.name}: output dtype {inst.output_dtype} "
                        f"!= first input dtype {inst.input_dtypes[0]}")
            elif inst.output_dtype != val:
                problems.append(
                    f"{self.name}: output dtype {inst.output_dtype} "
                    f"!= inferred constant {val}")
        if self.flops_model is not None:
            basis_name, coeff = self.flops_model
            if basis_name == "const":
                b: Optional[float] = 1.0
            else:
                b = dict(FLOP_BASES)[basis_name](inst)
            if b is not None and not _close(inst.flops, coeff * b):
                problems.append(
                    f"{self.name}: flops {inst.flops} != {coeff:g} * "
                    f"{basis_name} ({b:g}) = {coeff * b:g}")
        if self.read_delta is not None and not _close(
                float(inst.bytes_read), inst.input_nbytes + self.read_delta):
            problems.append(
                f"{self.name}: bytes_read {inst.bytes_read} != "
                f"input_nbytes {inst.input_nbytes} + {self.read_delta:g}")
        if self.written_delta is not None and not _close(
                float(inst.bytes_written),
                _out_nbytes(inst) + self.written_delta):
            problems.append(
                f"{self.name}: bytes_written {inst.bytes_written} != "
                f"out_nbytes {_out_nbytes(inst):g} + {self.written_delta:g}")
        elif self.written_delta is None and self.written_const is not None \
                and not _close(float(inst.bytes_written), self.written_const):
            problems.append(
                f"{self.name}: bytes_written {inst.bytes_written} != "
                f"inferred constant {self.written_const:g}")
        return problems

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name, "category": self.category,
            "instances": self.instances,
            "shape_relations": list(self.shape_relations),
            "dtype_rule": list(self.dtype_rule) if self.dtype_rule else None,
            "flops_model": ([self.flops_model[0], self.flops_model[1]]
                            if self.flops_model else None),
            "flops_bounds": (list(self.flops_bounds)
                             if self.flops_bounds else None),
            "read_delta": self.read_delta,
            "written_delta": self.written_delta,
            "written_const": self.written_const,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "OpRule":
        def _pair(value: object) -> Optional[Tuple[object, object]]:
            return tuple(value) if value is not None else None  # type: ignore[return-value]
        return cls(
            name=str(data["name"]), category=str(data["category"]),
            instances=int(data["instances"]),  # type: ignore[arg-type]
            shape_relations=tuple(data.get("shape_relations") or ()),  # type: ignore[arg-type]
            dtype_rule=_pair(data.get("dtype_rule")),  # type: ignore[arg-type]
            flops_model=_pair(data.get("flops_model")),  # type: ignore[arg-type]
            flops_bounds=_pair(data.get("flops_bounds")),  # type: ignore[arg-type]
            read_delta=data.get("read_delta"),  # type: ignore[arg-type]
            written_delta=data.get("written_delta"),  # type: ignore[arg-type]
            written_const=data.get("written_const"),  # type: ignore[arg-type]
        )


@dataclass
class RuleSet:
    """All inferred op rules plus the filter stats that produced them."""

    rules: Dict[str, OpRule] = field(default_factory=dict)
    filter_stats: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rules)

    def __contains__(self, name: str) -> bool:
        return name in self.rules

    def check_instance(self, inst: OpInstance) -> List[str]:
        """Violations of ``inst`` against its op's rule (none if unseen)."""
        rule = self.rules.get(inst.name)
        if rule is None:
            return []
        return rule.check(inst)

    # -- serialization -------------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "filter_stats": self.filter_stats,
            "rules": [self.rules[name].to_dict()
                      for name in sorted(self.rules)],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RuleSet":
        data = json.loads(text)
        rules = {entry["name"]: OpRule.from_dict(entry)
                 for entry in data.get("rules", [])}
        return cls(rules=rules, filter_stats=data.get("filter_stats", {}))

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "RuleSet":
        with open(path) as handle:
            return cls.from_json(handle.read())

    def render(self) -> str:
        """Human-readable rules report (``repro fuzz rules``)."""
        lines = [f"inferred rules for {len(self.rules)} ops "
                 f"(filter: {self.filter_stats})"]
        for name in sorted(self.rules):
            rule = self.rules[name]
            flops = (f"{rule.flops_model[1]:g}*{rule.flops_model[0]}"
                     if rule.flops_model else
                     (f"bounds[{rule.flops_bounds[0]:g}, "
                      f"{rule.flops_bounds[1]:g}]/out_elem"
                      if rule.flops_bounds else "-"))
            dtype = ("=".join(rule.dtype_rule) if rule.dtype_rule else "-")
            lines.append(
                f"  {name:<18s} n={rule.instances:<4d} "
                f"shapes[{', '.join(rule.shape_relations) or '-'}] "
                f"flops={flops} dtype={dtype}")
        return "\n".join(lines)


def infer_rule(name: str, instances: Sequence[OpInstance]) -> OpRule:
    """Fit one op's rule from its (filtered) instances."""
    relations = tuple(rel for rel, pred in SHAPE_RELATIONS.items()
                      if all(pred(inst) for inst in instances))

    dtype_rule: Optional[Tuple[str, str]] = None
    if all(inst.input_dtypes
           and inst.output_dtype == inst.input_dtypes[0]
           for inst in instances):
        dtype_rule = ("preserved", "")
    else:
        const = {inst.output_dtype for inst in instances}
        if len(const) == 1:
            dtype_rule = ("constant", next(iter(const)))

    flops_model: Optional[Tuple[str, float]] = None
    for basis_name, basis_fn in FLOP_BASES:
        coeff = _fit_linear(instances, basis_fn,
                            lambda inst: inst.flops)
        if coeff is not None:
            flops_model = (basis_name, coeff)
            break
    if flops_model is None:
        const = _fit_constant(instances, lambda inst: inst.flops)
        if const is not None:
            flops_model = ("const", const)

    flops_bounds: Optional[Tuple[float, float]] = None
    if flops_model is None:
        ratios = [inst.flops / inst.out_size
                  for inst in instances if inst.out_size]
        if ratios:
            flops_bounds = (min(ratios), max(ratios))

    read_delta = _fit_constant(
        instances, lambda inst: float(inst.bytes_read) - inst.input_nbytes)
    written_delta = _fit_constant(
        instances, lambda inst: float(inst.bytes_written) - _out_nbytes(inst))
    written_const = None
    if written_delta is None:
        written_const = _fit_constant(
            instances, lambda inst: float(inst.bytes_written))

    return OpRule(
        name=name, category=instances[0].category,
        instances=len(instances), shape_relations=relations,
        dtype_rule=dtype_rule, flops_model=flops_model,
        flops_bounds=flops_bounds, read_delta=read_delta,
        written_delta=written_delta, written_const=written_const)


def infer_rules(instances: Sequence[OpInstance],
                filter_stats: Optional[Dict[str, int]] = None) -> RuleSet:
    """Group filtered instances by canonical op and fit each rule."""
    grouped: Dict[str, List[OpInstance]] = {}
    for inst in instances:
        grouped.setdefault(inst.name, []).append(inst)
    rules = {name: infer_rule(name, group)
             for name, group in grouped.items()}
    return RuleSet(rules=rules, filter_stats=dict(filter_stats or {}))
