"""Harvested operator instances: the raw material of rule inference.

An :class:`OpInstance` is one observed execution of one instrumented
tensor op — input shapes/dtypes, output shape/dtype, and the counter
deltas the dispatcher recorded for it (FLOPs, bytes, sparsity).  The
harvester (:mod:`repro.fuzz.harvest`) collects them by replaying the
workload roster under an op observer; the rule engine
(:mod:`repro.fuzz.rules`) fits per-op transfer rules over them.

Following the Dynofuzz record pipeline, instances pass through two
filters before inference:

* **non-finite filter** — instances whose counters are NaN/Inf (e.g.
  recorded under an injected poison fault) carry no information about
  the healthy counter model and are dropped;
* **duplicate filter** — instances identical in every modeled field
  are collapsed to one; the fitter weighs evidence by distinct
  behaviours, not by how often a workload loops over the same shapes.

Instances serialize to JSONL (one record per line, sorted canonically)
so a harvest is diffable and byte-reproducible across runs.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

Shape = Tuple[int, ...]

#: dtype label recorded for raw python scalars handed to a kernel
SCALAR_DTYPE = "scalar"


@dataclass(frozen=True)
class OpInstance:
    """One observed (inputs -> output, counters) execution of an op."""

    name: str                         # canonical op name (variant stripped)
    raw_name: str                     # as recorded, e.g. "fuzzy_and[godel]"
    category: str                     # taxonomy category value
    input_shapes: Tuple[Shape, ...]
    input_dtypes: Tuple[str, ...]
    input_nbytes: int                 # exact bytes of all inputs
    output_shape: Shape
    output_dtype: str
    flops: float
    bytes_read: int
    bytes_written: int
    output_sparsity: float
    workload: str = ""
    phase: str = ""

    @property
    def out_size(self) -> int:
        size = 1
        for dim in self.output_shape:
            size *= dim
        return size

    def input_size(self, index: int) -> int:
        size = 1
        for dim in self.input_shapes[index]:
            size *= dim
        return size

    def finite(self) -> bool:
        """True when every modeled counter is a finite number."""
        return (math.isfinite(self.flops)
                and math.isfinite(self.output_sparsity)
                and math.isfinite(self.bytes_read)
                and math.isfinite(self.bytes_written))

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out = asdict(self)
        out["input_shapes"] = [list(s) for s in self.input_shapes]
        out["input_dtypes"] = list(self.input_dtypes)
        out["output_shape"] = list(self.output_shape)
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "OpInstance":
        return cls(
            name=str(data["name"]),
            raw_name=str(data.get("raw_name", data["name"])),
            category=str(data["category"]),
            input_shapes=tuple(tuple(int(d) for d in s)
                               for s in data["input_shapes"]),  # type: ignore[union-attr]
            input_dtypes=tuple(str(d) for d in data["input_dtypes"]),  # type: ignore[union-attr]
            input_nbytes=int(data["input_nbytes"]),  # type: ignore[arg-type]
            output_shape=tuple(int(d) for d in data["output_shape"]),  # type: ignore[union-attr]
            output_dtype=str(data["output_dtype"]),
            flops=float(data["flops"]),  # type: ignore[arg-type]
            bytes_read=int(data["bytes_read"]),  # type: ignore[arg-type]
            bytes_written=int(data["bytes_written"]),  # type: ignore[arg-type]
            output_sparsity=float(data["output_sparsity"]),  # type: ignore[arg-type]
            workload=str(data.get("workload", "")),
            phase=str(data.get("phase", "")),
        )

    def dedup_key(self) -> Tuple[object, ...]:
        """Identity under the duplicate filter (workload/phase ignored)."""
        return (self.name, self.raw_name, self.input_shapes,
                self.input_dtypes, self.input_nbytes, self.output_shape,
                self.output_dtype, self.flops, self.bytes_read,
                self.bytes_written, self.output_sparsity)


def filter_instances(instances: Iterable[OpInstance]
                     ) -> Tuple[List[OpInstance], Dict[str, int]]:
    """Apply the non-finite and duplicate filters.

    Returns the surviving instances (first occurrence order) and a
    stats dict: ``{"total", "non_finite", "duplicates", "kept"}``.
    """
    kept: List[OpInstance] = []
    seen: set = set()
    stats = {"total": 0, "non_finite": 0, "duplicates": 0, "kept": 0}
    for inst in instances:
        stats["total"] += 1
        if not inst.finite():
            stats["non_finite"] += 1
            continue
        key = inst.dedup_key()
        if key in seen:
            stats["duplicates"] += 1
            continue
        seen.add(key)
        kept.append(inst)
    stats["kept"] = len(kept)
    return kept, stats


def _canonical_sort_key(inst: OpInstance) -> Tuple[object, ...]:
    return (inst.name, inst.raw_name, inst.input_shapes,
            inst.input_dtypes, inst.output_shape, inst.flops,
            inst.bytes_read, inst.bytes_written, inst.workload,
            inst.phase)


def dump_instances(instances: Sequence[OpInstance]) -> str:
    """Canonical JSONL text for a harvest (sorted, stable separators)."""
    ordered = sorted(instances, key=_canonical_sort_key)
    lines = [json.dumps(inst.to_dict(), sort_keys=True,
                        separators=(",", ":"))
             for inst in ordered]
    return "\n".join(lines) + ("\n" if lines else "")


def save_instances(instances: Sequence[OpInstance], path: str) -> None:
    with open(path, "w") as handle:
        handle.write(dump_instances(instances))


def load_instances(path: str) -> List[OpInstance]:
    out: List[OpInstance] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(OpInstance.from_dict(json.loads(line)))
    return out
