"""Operator-rule-inference fuzzing with differential execution checks.

The Dynofuzz-style pipeline over the instrumented tensor runtime:

* :mod:`~repro.fuzz.harvest` — replay the workload roster under the
  dispatcher's op-observer hook, recording one
  :class:`~repro.fuzz.records.OpInstance` per kernel;
* :mod:`~repro.fuzz.rules` — fit per-op shape/dtype/counter transfer
  rules over the (filtered) instances;
* :mod:`~repro.fuzz.generate` — grow seeded random op programs whose
  shapes compose by construction, plus boundary workload configs;
* :mod:`~repro.fuzz.oracle` — execute each program twice, eagerly,
  and cross-check template predictions, inferred rules, trace
  structure, and run-to-run determinism;
* :mod:`~repro.fuzz.chaos` — fuzz fault/timeout/rejection schedules
  through :mod:`repro.serve`, asserting every request terminates in a
  classified state;
* :mod:`~repro.fuzz.corpus` — minimize failures and persist them to a
  replayable JSONL crash corpus;
* :mod:`~repro.fuzz.runner` / :mod:`~repro.fuzz.cli` — whole
  campaigns and the ``repro fuzz run|replay|rules`` commands.
"""

from repro.fuzz.chaos import (ChaosConfig, ChaosReport,
                              build_chaos_schedule, check_serve_invariants,
                              deterministic_digest, fuzz_chaos,
                              run_chaos_schedule, run_live_chaos)
from repro.fuzz.corpus import (CrashEntry, ReplayResult, load_corpus,
                               minimize_program, replay_entry, save_corpus)
from repro.fuzz.generate import (KNOWN_UNGENERATED, TEMPLATES, LeafSpec,
                                 OpNode, OpProgram, calibration_programs,
                                 generate_program, perturb_configs)
from repro.fuzz.harvest import (DEFAULT_HARVEST, OpInstanceRecorder,
                                harvest_roster, harvest_workload)
from repro.fuzz.oracle import (CheckResult, Divergence, ExecutionResult,
                               build_ruleset, check_program, counter_digest,
                               execute_program, materialize_leaf)
from repro.fuzz.records import (OpInstance, dump_instances,
                                filter_instances, load_instances,
                                save_instances)
from repro.fuzz.rules import OpRule, RuleSet, infer_rules
from repro.fuzz.runner import FuzzReport, fuzz_run

__all__ = [
    "ChaosConfig", "ChaosReport", "CheckResult", "CrashEntry",
    "DEFAULT_HARVEST", "Divergence", "ExecutionResult", "FuzzReport",
    "KNOWN_UNGENERATED", "LeafSpec", "OpInstance", "OpInstanceRecorder",
    "OpNode", "OpProgram", "OpRule", "ReplayResult", "RuleSet",
    "TEMPLATES", "build_chaos_schedule", "build_ruleset",
    "calibration_programs", "check_program", "check_serve_invariants",
    "counter_digest", "deterministic_digest", "dump_instances",
    "execute_program", "filter_instances", "fuzz_chaos", "fuzz_run",
    "generate_program", "harvest_roster", "harvest_workload",
    "infer_rules", "load_corpus", "load_instances", "materialize_leaf",
    "minimize_program", "perturb_configs", "replay_entry",
    "run_chaos_schedule", "run_live_chaos", "save_corpus",
    "save_instances",
]
