"""Seeded generation of random valid op programs and perturbed configs.

The generator is the "hybrid program synthesis" stage of the Dynofuzz
pipeline: it chains instrumented ops into random dataflow graphs whose
shapes/dtypes are guaranteed to compose, by construction, from per-op
*templates* that mirror each op's shape-transfer law.  Each emitted
node carries the template's **expected** output shape and dtype, so
the differential oracle can compare eager execution against the
static prediction as well as against the inferred counter rules.

Everything is driven by one ``np.random.default_rng(seed)`` Generator:
the same seed always yields byte-identical programs (and therefore a
byte-identical crash corpus), which is what makes every failure replay
deterministically.

Boundary pressure is deliberate: dimension samples include 0 and 1,
index domains include empty ranges, and the workload-config perturber
(:func:`perturb_configs`) emits degenerate knowledge bases, boundary
matrix sizes, and extreme-sparsity settings for the roster workloads.

Ops without a template are listed in :data:`KNOWN_UNGENERATED` with a
reason; the registry-coverage test asserts the two sets exactly
partition ``OP_CATEGORIES``, so a newly registered op must either get
a template or an explicit exemption.
"""

from __future__ import annotations

import json
from collections import namedtuple
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

Shape = Tuple[int, ...]
Entry = namedtuple("Entry", "nid shape dtype")

_FLOAT_DTYPES = ("float32", "float64")


def _is_float(dtype: str) -> bool:
    return dtype in _FLOAT_DTYPES


def _size(shape: Shape) -> int:
    size = 1
    for dim in shape:
        size *= dim
    return size


# ---------------------------------------------------------------------------
# program model
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LeafSpec:
    """An input tensor materialized from ``default_rng([seed, nid])``."""

    nid: int
    shape: Shape
    dtype: str = "float32"
    dist: str = "normal"      # normal | unit | offset | bool | indices
    high: int = 0             # exclusive index bound for dist="indices"

    def to_dict(self) -> Dict[str, object]:
        return {"nid": self.nid, "shape": list(self.shape),
                "dtype": self.dtype, "dist": self.dist, "high": self.high}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LeafSpec":
        return cls(nid=int(data["nid"]),  # type: ignore[arg-type]
                   shape=tuple(int(d) for d in data["shape"]),  # type: ignore[union-attr]
                   dtype=str(data["dtype"]), dist=str(data["dist"]),
                   high=int(data.get("high", 0)))  # type: ignore[arg-type]


@dataclass(frozen=True)
class OpNode:
    """One op application; inputs reference earlier leaf/node nids."""

    nid: int
    op: str                       # repro.tensor function name
    inputs: Tuple[int, ...]
    params: Tuple[Tuple[str, object], ...] = ()
    out_shape: Optional[Shape] = None   # template prediction (None: dynamic)
    out_dtype: Optional[str] = None

    def param_dict(self) -> Dict[str, object]:
        return dict(self.params)

    def to_dict(self) -> Dict[str, object]:
        return {"nid": self.nid, "op": self.op,
                "inputs": list(self.inputs),
                "params": {k: v for k, v in self.params},
                "out_shape": (list(self.out_shape)
                              if self.out_shape is not None else None),
                "out_dtype": self.out_dtype}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "OpNode":
        params = tuple(sorted(
            (str(k), _param_from_json(v))
            for k, v in (data.get("params") or {}).items()))  # type: ignore[union-attr]
        shape = data.get("out_shape")
        return cls(nid=int(data["nid"]), op=str(data["op"]),  # type: ignore[arg-type]
                   inputs=tuple(int(i) for i in data["inputs"]),  # type: ignore[union-attr]
                   params=params,
                   out_shape=(tuple(int(d) for d in shape)
                              if shape is not None else None),
                   out_dtype=(str(data["out_dtype"])
                              if data.get("out_dtype") is not None else None))


def _param_from_json(value: object) -> object:
    if isinstance(value, list):
        return tuple(_param_from_json(v) for v in value)
    return value


@dataclass
class OpProgram:
    """A generated program: leaves, nodes, and the seed that built it."""

    seed: int
    leaves: List[LeafSpec] = field(default_factory=list)
    nodes: List[OpNode] = field(default_factory=list)

    def op_names(self) -> List[str]:
        return [node.op for node in self.nodes]

    def to_dict(self) -> Dict[str, object]:
        return {"seed": self.seed,
                "leaves": [leaf.to_dict() for leaf in self.leaves],
                "nodes": [node.to_dict() for node in self.nodes]}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "OpProgram":
        return cls(seed=int(data["seed"]),  # type: ignore[arg-type]
                   leaves=[LeafSpec.from_dict(d) for d in data["leaves"]],  # type: ignore[union-attr]
                   nodes=[OpNode.from_dict(d) for d in data["nodes"]])  # type: ignore[union-attr]

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))


# ---------------------------------------------------------------------------
# builder
# ---------------------------------------------------------------------------

class ProgramBuilder:
    """Accumulates leaves/nodes and tracks reusable typed entries."""

    def __init__(self, seed: int):
        self.program = OpProgram(seed=seed)
        self.entries: List[Entry] = []
        self._next_nid = 0

    def _nid(self) -> int:
        nid = self._next_nid
        self._next_nid += 1
        return nid

    def leaf(self, shape: Sequence[int], dist: str = "normal",
             dtype: str = "float32", high: int = 0) -> Entry:
        spec = LeafSpec(nid=self._nid(), shape=tuple(int(d) for d in shape),
                        dtype=dtype, dist=dist, high=high)
        self.program.leaves.append(spec)
        entry = Entry(spec.nid, spec.shape, spec.dtype)
        self.entries.append(entry)
        return entry

    def emit(self, op: str, inputs: Sequence[Entry],
             params: Dict[str, object],
             out_shape: Optional[Shape],
             out_dtype: Optional[str]) -> Optional[Entry]:
        node = OpNode(nid=self._nid(), op=op,
                      inputs=tuple(e.nid for e in inputs),
                      params=tuple(sorted(params.items())),
                      out_shape=out_shape, out_dtype=out_dtype)
        self.program.nodes.append(node)
        if out_shape is None or out_dtype is None:
            return None        # dynamic output: not reusable for chaining
        entry = Entry(node.nid, out_shape, out_dtype)
        self.entries.append(entry)
        return entry


# ---------------------------------------------------------------------------
# sampling helpers
# ---------------------------------------------------------------------------

#: small dims with boundary pressure; zero appears but stays rare so
#: programs usually survive long enough to compose deeply
_DIM_CHOICES = (0, 1, 2, 3, 4, 5, 8)
_DIM_WEIGHTS = (0.06, 0.14, 0.2, 0.2, 0.16, 0.14, 0.1)


def _sample_dim(rng: np.random.Generator) -> int:
    return int(rng.choice(_DIM_CHOICES, p=_DIM_WEIGHTS))


def _sample_shape(rng: np.random.Generator, min_rank: int = 0,
                  max_rank: int = 3) -> Shape:
    rank = int(rng.integers(min_rank, max_rank + 1))
    return tuple(_sample_dim(rng) for _ in range(rank))


def _pick(rng: np.random.Generator, entries: Sequence[Entry],
          pred: Callable[[Entry], bool]) -> Optional[Entry]:
    matches = [e for e in entries if pred(e)]
    if not matches:
        return None
    return matches[int(rng.integers(len(matches)))]


def _float_entry(rng: np.random.Generator, b: ProgramBuilder,
                 min_rank: int = 0, max_rank: int = 3,
                 reuse_p: float = 0.7) -> Entry:
    """A float entry of acceptable rank: reuse one or grow a leaf."""
    if rng.random() < reuse_p:
        found = _pick(rng, b.entries,
                      lambda e: _is_float(e.dtype)
                      and min_rank <= len(e.shape) <= max_rank)
        if found is not None:
            return found
    return b.leaf(_sample_shape(rng, min_rank, max_rank))


def _broadcast_partner(rng: np.random.Generator, b: ProgramBuilder,
                       shape: Shape) -> Entry:
    """A leaf broadcast-compatible with ``shape``."""
    mode = rng.random()
    if mode < 0.4 or not shape:
        return b.leaf(shape)
    if mode < 0.6:
        return b.leaf(())                       # scalar-shaped operand
    partner = list(shape)
    for i in range(len(partner)):
        if rng.random() < 0.3:
            partner[i] = 1
    drop = int(rng.integers(0, len(partner)))   # shorter-rank operand
    return b.leaf(tuple(partner[drop:]))


def _result_dtype(*dtypes: str) -> str:
    return str(np.result_type(*dtypes))


# ---------------------------------------------------------------------------
# templates: registry key -> emitter
# ---------------------------------------------------------------------------

Template = Callable[[np.random.Generator, ProgramBuilder], Optional[Entry]]
TEMPLATES: Dict[str, Template] = {}

#: registry ops deliberately not generated, with the reason; the
#: coverage test enforces TEMPLATES | KNOWN_UNGENERATED == OP_CATEGORIES
KNOWN_UNGENERATED: Dict[str, str] = {
    "linear": "nn-layer wrapper over matmul+add; constituents generated",
    "batchnorm2d": "nn-layer wrapper; constituents generated",
    "maxpool2d": "nn-layer wrapper with im2col internals",
    "avgpool2d": "nn-layer wrapper with im2col internals",
    "global_avgpool": "nn-layer wrapper over mean",
    "spmm": "CSRMatrix calling convention (not a dense-tensor op)",
    "sddmm": "CSRMatrix calling convention",
    "csr_row_softmax": "CSRMatrix calling convention",
    "csr_mask": "CSRMatrix calling convention",
    "csr_to_dense": "CSRMatrix calling convention",
    "scatter_max": "CSR scatter kernels (indptr-driven)",
    "scatter_min": "CSR scatter kernels (indptr-driven)",
    "complex_conj": "VSA fractional-binding internal (complex pipeline)",
    "phasor_project": "VSA fractional-binding internal",
    "phasor_similarity": "VSA fractional-binding internal",
    "index": "takes an arbitrary host-side key object, not serializable",
}


def _template(key: str) -> Callable[[Template], Template]:
    def decorator(fn: Template) -> Template:
        TEMPLATES[key] = fn
        return fn
    return decorator


def _register_arith(key: str) -> None:
    def emit(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
        a = _float_entry(rng, b)
        other = _broadcast_partner(rng, b, a.shape)
        out = tuple(np.broadcast_shapes(a.shape, other.shape))
        return b.emit(key, [a, other], {}, out,
                      _result_dtype(a.dtype, other.dtype))
    TEMPLATES[key] = emit


def _register_compare(key: str) -> None:
    def emit(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
        a = _float_entry(rng, b)
        other = _broadcast_partner(rng, b, a.shape)
        out = tuple(np.broadcast_shapes(a.shape, other.shape))
        return b.emit(key, [a, other], {}, out, "bool")
    TEMPLATES[key] = emit


def _register_unary(key: str) -> None:
    def emit(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
        a = _float_entry(rng, b)
        return b.emit(key, [a], {}, a.shape, a.dtype)
    TEMPLATES[key] = emit


for _key in ("add", "sub", "mul", "div", "pow", "maximum", "minimum"):
    _register_arith(_key)
for _key in ("greater", "less", "equal", "logical_and", "logical_or"):
    _register_compare(_key)
for _key in ("neg", "exp", "log", "sqrt", "tanh", "abs", "sign",
             "reciprocal", "relu", "sigmoid"):
    _register_unary(_key)


@_template("logical_not")
def _t_logical_not(rng: np.random.Generator,
                   b: ProgramBuilder) -> Optional[Entry]:
    a = _pick(rng, b.entries, lambda e: e.dtype == "bool")
    if a is None:
        a = b.leaf(_sample_shape(rng), dist="bool", dtype="bool")
    return b.emit("logical_not", [a], {}, a.shape, "bool")


@_template("clip")
def _t_clip(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    a = _float_entry(rng, b)
    lo, hi = sorted(float(round(v, 3)) for v in rng.normal(size=2))
    return b.emit("clip", [a], {"lo": lo, "hi": hi}, a.shape, a.dtype)


@_template("where")
def _t_where(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    a = _float_entry(rng, b)
    cond = b.leaf(a.shape, dist="bool", dtype="bool")
    other = b.leaf(a.shape)
    return b.emit("where", [cond, a, other], {}, a.shape,
                  _result_dtype(a.dtype, other.dtype))


def _register_reduction(key: str, out_dtype: Optional[str] = None,
                        needs_elems: bool = False) -> None:
    def emit(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
        a = _float_entry(rng, b, min_rank=1)
        if needs_elems and _size(a.shape) == 0 and rng.random() < 0.8:
            return None        # mostly avoid the classified-error stop
        if rng.random() < 0.3:
            out: Shape = ()
            params: Dict[str, object] = {}
            if needs_elems and _size(a.shape) == 0:
                pass           # rare: deliberately hit the classified path
        else:
            axis = int(rng.integers(len(a.shape)))
            keepdims = bool(rng.random() < 0.3)
            params = {"axis": axis, "keepdims": keepdims}
            out = (a.shape[:axis] + ((1,) if keepdims else ())
                   + a.shape[axis + 1:])
        dtype = out_dtype or a.dtype
        return b.emit(key, [a], params, out, dtype)
    TEMPLATES[key] = emit


for _key in ("sum", "mean", "prod", "max", "min"):
    _register_reduction(_key, needs_elems=_key in ("max", "min"))
_register_reduction("norm")


@_template("argmax")
def _t_argmax(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    a = _float_entry(rng, b, min_rank=1)
    if rng.random() < 0.3:
        return b.emit("argmax", [a], {}, (), "int64")
    axis = int(rng.integers(len(a.shape)))
    out = a.shape[:axis] + a.shape[axis + 1:]
    return b.emit("argmax", [a], {"axis": axis}, out, "int64")


@_template("cumsum")
def _t_cumsum(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    a = _float_entry(rng, b, min_rank=1)
    axis = int(rng.integers(len(a.shape)))
    return b.emit("cumsum", [a], {"axis": axis}, a.shape, a.dtype)


def _register_softmax(key: str) -> None:
    def emit(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
        a = _float_entry(rng, b, min_rank=1)
        return b.emit(key, [a], {"axis": -1}, a.shape, a.dtype)
    TEMPLATES[key] = emit


_register_softmax("softmax")
_register_softmax("log_softmax")


# -- matmul family -----------------------------------------------------------

@_template("matmul")
def _t_matmul(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    a = _float_entry(rng, b, min_rank=1, max_rank=3)
    k = a.shape[-1]
    if len(a.shape) == 1 and rng.random() < 0.3:
        other = b.leaf((k,))                       # vector · vector
        return b.emit("matmul", [a, other], {}, (),
                      _result_dtype(a.dtype, other.dtype))
    cols = _sample_dim(rng)
    other = b.leaf((k, cols))
    out = a.shape[:-1] + (cols,)
    if len(a.shape) == 1:
        out = (cols,)
    return b.emit("matmul", [a, other], {}, out,
                  _result_dtype(a.dtype, other.dtype))


@_template("outer")
def _t_outer(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    a = _float_entry(rng, b)
    other = _float_entry(rng, b)
    return b.emit("outer", [a, other], {},
                  (_size(a.shape), _size(other.shape)),
                  _result_dtype(a.dtype, other.dtype))


@_template("einsum")
def _t_einsum(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    i, j, k = (_sample_dim(rng) for _ in range(3))
    a = b.leaf((i, j))
    other = b.leaf((j, k))
    return b.emit("einsum", [a, other], {"spec": "ij,jk->ik"}, (i, k),
                  _result_dtype(a.dtype, other.dtype))


@_template("conv2d")
def _t_conv2d(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    n = int(rng.choice((0, 1, 2), p=(0.1, 0.5, 0.4)))
    c = int(rng.integers(1, 3))
    h, w = int(rng.integers(3, 7)), int(rng.integers(3, 7))
    c_out = int(rng.integers(1, 4))
    padding = int(rng.integers(0, 2))
    stride = int(rng.integers(1, 3))
    kh = int(rng.integers(1, h + 2 * padding + 1))
    kw = int(rng.integers(1, w + 2 * padding + 1))
    x = b.leaf((n, c, h, w))
    weight = b.leaf((c_out, c, kh, kw))
    h_out = (h + 2 * padding - kh) // stride + 1
    w_out = (w + 2 * padding - kw) // stride + 1
    inputs = [x, weight]
    params: Dict[str, object] = {"stride": stride, "padding": padding}
    if rng.random() < 0.5:
        inputs.append(b.leaf((c_out,)))
        params["bias"] = True
    return b.emit("conv2d", inputs, params, (n, c_out, h_out, w_out),
                  x.dtype)


# -- spectral / binding ------------------------------------------------------

def _complex_for(dtype: str) -> str:
    """numpy's FFT output width for a real input dtype."""
    return "complex64" if dtype == "float32" else "complex128"


def _real_for(dtype: str) -> str:
    return "float32" if dtype == "complex64" else "float64"


@_template("rfft")
def _t_rfft(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    a = _float_entry(rng, b, min_rank=1)
    d = a.shape[-1]
    if d == 0 and rng.random() < 0.8:
        return None            # mostly avoid the classified stop
    out = a.shape[:-1] + (d // 2 + 1,) if d else None
    return b.emit("rfft", [a], {"axis": -1}, out,
                  _complex_for(a.dtype) if d else None)


@_template("irfft")
def _t_irfft(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    spec = _pick(rng, b.entries,
                 lambda e: e.dtype.startswith("complex")
                 and len(e.shape) >= 1 and e.shape[-1] > 0)
    if spec is None:
        base = _float_entry(rng, b, min_rank=1)
        if base.shape[-1] == 0:
            return None
        spec = b.emit("rfft", [base], {"axis": -1},
                      base.shape[:-1] + (base.shape[-1] // 2 + 1,),
                      _complex_for(base.dtype))
        if spec is None:
            return None
    n = int(rng.integers(1, 2 * spec.shape[-1] + 1))
    return b.emit("irfft", [spec], {"n": n, "axis": -1},
                  spec.shape[:-1] + (n,), _real_for(spec.dtype))


def _register_binding(key: str) -> None:
    def emit(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
        a = _float_entry(rng, b, min_rank=1)
        d = a.shape[-1]
        if d == 0:
            return None
        other = b.leaf((d,))
        return b.emit(key, [a, other], {}, a.shape, a.dtype)
    TEMPLATES[key] = emit


_register_binding("circular_conv")
_register_binding("circular_corr")


# -- transforms --------------------------------------------------------------

@_template("reshape")
def _t_reshape(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    a = _pick(rng, b.entries, lambda e: True) or b.leaf(_sample_shape(rng))
    size = _size(a.shape)
    if size == 0:
        new_shape: Shape = (0,)
    else:
        factors: List[int] = []
        rest = size
        while rest > 1 and len(factors) < 2 and rng.random() < 0.7:
            divs = [d for d in range(2, rest + 1) if rest % d == 0]
            pick = divs[int(rng.integers(len(divs)))]
            factors.append(pick)
            rest //= pick
        factors.append(rest)
        new_shape = tuple(factors)
    return b.emit("reshape", [a], {"shape": list(new_shape)}, new_shape,
                  a.dtype)


@_template("transpose")
def _t_transpose(rng: np.random.Generator,
                 b: ProgramBuilder) -> Optional[Entry]:
    a = _float_entry(rng, b, min_rank=1)
    axes = [int(i) for i in rng.permutation(len(a.shape))]
    out = tuple(a.shape[i] for i in axes)
    return b.emit("transpose", [a], {"axes": axes}, out, a.dtype)


@_template("concat")
def _t_concat(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    a = _float_entry(rng, b, min_rank=1)
    count = int(rng.integers(2, 4))
    parts = [a] + [b.leaf(a.shape) for _ in range(count - 1)]
    axis = int(rng.integers(len(a.shape)))
    out = (a.shape[:axis] + (a.shape[axis] * count,) + a.shape[axis + 1:])
    return b.emit("concat", parts, {"axis": axis}, out, a.dtype)


@_template("stack")
def _t_stack(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    a = _float_entry(rng, b)
    count = int(rng.integers(2, 4))
    parts = [a] + [b.leaf(a.shape) for _ in range(count - 1)]
    axis = int(rng.integers(len(a.shape) + 1))
    out = a.shape[:axis] + (count,) + a.shape[axis:]
    return b.emit("stack", parts, {"axis": axis}, out, a.dtype)


@_template("split")
def _t_split(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    a = _float_entry(rng, b, min_rank=1)
    options = [(axis, s) for axis in range(len(a.shape))
               for s in range(1, a.shape[axis] + 1)
               if a.shape[axis] % s == 0]
    if not options:
        return None
    axis, sections = options[int(rng.integers(len(options)))]
    part = int(rng.integers(sections))
    out = (a.shape[:axis] + (a.shape[axis] // sections,)
           + a.shape[axis + 1:])
    return b.emit("split", [a],
                  {"sections": sections, "axis": axis, "part": part},
                  out, a.dtype)


@_template("pad")
def _t_pad(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    a = _float_entry(rng, b, min_rank=1)
    width = int(rng.integers(0, 3))
    value = float(round(float(rng.normal()), 3))
    out = tuple(d + 2 * width for d in a.shape)
    return b.emit("pad", [a], {"pad_width": width, "value": value}, out,
                  a.dtype)


@_template("take")
def _t_take(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    a = _float_entry(rng, b, min_rank=1)
    axis = int(rng.integers(len(a.shape)))
    extent = a.shape[axis]
    count = 0 if extent == 0 else int(rng.integers(0, 6))
    idx = b.leaf((count,), dist="indices", dtype="int64", high=extent)
    out = a.shape[:axis] + (count,) + a.shape[axis + 1:]
    return b.emit("take", [a, idx], {"axis": axis}, out, a.dtype)


@_template("masked_select")
def _t_masked_select(rng: np.random.Generator,
                     b: ProgramBuilder) -> Optional[Entry]:
    a = _float_entry(rng, b)
    mask = b.leaf(a.shape, dist="bool", dtype="bool")
    # output extent is data-dependent: emitted unchecked and unreusable
    return b.emit("masked_select", [a, mask], {}, None, None)


@_template("broadcast_to")
def _t_broadcast_to(rng: np.random.Generator,
                    b: ProgramBuilder) -> Optional[Entry]:
    a = _float_entry(rng, b)
    lead = tuple(_sample_dim(rng)
                 for _ in range(int(rng.integers(1, 3))))
    out = lead + a.shape
    return b.emit("broadcast_to", [a], {"shape": list(out)}, out, a.dtype)


@_template("roll")
def _t_roll(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    a = _float_entry(rng, b, min_rank=1)
    axis = int(rng.integers(len(a.shape)))
    shift = int(rng.integers(-3, 4))
    return b.emit("roll", [a], {"shift": shift, "axis": axis}, a.shape,
                  a.dtype)


@_template("flip")
def _t_flip(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    a = _float_entry(rng, b, min_rank=1)
    axis = int(rng.integers(len(a.shape)))
    return b.emit("flip", [a], {"axis": axis}, a.shape, a.dtype)


@_template("sort")
def _t_sort(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    a = _float_entry(rng, b, min_rank=1)
    return b.emit("sort", [a], {"axis": -1}, a.shape, a.dtype)


@_template("argsort")
def _t_argsort(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    a = _float_entry(rng, b, min_rank=1)
    return b.emit("argsort", [a], {"axis": -1}, a.shape, "int64")


@_template("coalesce")
def _t_coalesce(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    size = int(rng.integers(0, 9))
    count = 0 if size == 0 else int(rng.integers(0, 6))
    idx = b.leaf((count,), dist="indices", dtype="int64", high=size)
    values = b.leaf((count,))
    return b.emit("coalesce", [idx, values], {"size": size}, (size,),
                  values.dtype)


@_template("one_hot")
def _t_one_hot(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    depth = int(rng.integers(1, 6))
    idx = b.leaf(_sample_shape(rng, max_rank=2), dist="indices",
                 dtype="int64", high=depth)
    return b.emit("one_hot", [idx], {"depth": depth},
                  idx.shape + (depth,), "float32")


# -- movement ----------------------------------------------------------------

def _register_movement(key: str, op: str) -> None:
    def emit(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
        a = _pick(rng, b.entries, lambda e: True) or b.leaf(
            _sample_shape(rng))
        return b.emit(op, [a], {}, a.shape, a.dtype)
    TEMPLATES[key] = emit


_register_movement("copy", "copy")
_register_movement("assign", "assign")
_register_movement("to_host", "to_host")
_register_movement("to_*", "to_device")


@_template("astype")
def _t_astype(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
    a = _pick(rng, b.entries,
              lambda e: not e.dtype.startswith("complex"))
    if a is None:
        a = b.leaf(_sample_shape(rng))
    target = ("float32", "float64", "int32")[int(rng.integers(3))]
    return b.emit("astype", [a], {"dtype": target}, a.shape, target)


# -- fuzzy logic -------------------------------------------------------------

_FUZZY_KINDS = ("lukasiewicz", "goedel", "product")


def _register_fuzzy(key: str) -> None:
    def emit(rng: np.random.Generator, b: ProgramBuilder) -> Optional[Entry]:
        shape = _sample_shape(rng)
        a = b.leaf(shape, dist="unit")
        other = b.leaf(shape, dist="unit")
        kind = _FUZZY_KINDS[int(rng.integers(len(_FUZZY_KINDS)))]
        return b.emit(key, [a, other], {"kind": kind}, shape,
                      _result_dtype(a.dtype, other.dtype))
    TEMPLATES[key] = emit


_register_fuzzy("fuzzy_and")
_register_fuzzy("fuzzy_or")
_register_fuzzy("fuzzy_implies")


@_template("fuzzy_not")
def _t_fuzzy_not(rng: np.random.Generator,
                 b: ProgramBuilder) -> Optional[Entry]:
    a = b.leaf(_sample_shape(rng), dist="unit")
    return b.emit("fuzzy_not", [a], {}, a.shape, a.dtype)


# ---------------------------------------------------------------------------
# program generation
# ---------------------------------------------------------------------------

def op_universe(rule_ops: Optional[Sequence[str]] = None) -> List[str]:
    """Generatable registry keys, optionally restricted to inferred ops.

    When a rule set is supplied, only ops the harvest actually saw are
    composed (their rules exist to be checked); with ``None`` every
    template is in play.
    """
    keys = sorted(TEMPLATES)
    if rule_ops is None:
        return keys
    known = set(rule_ops)
    picked = [k for k in keys
              if k in known or (k == "to_*" and any(
                  op.startswith("to_") for op in known))]
    return picked or keys


def generate_program(seed: int, max_ops: int = 12,
                     ops: Optional[Sequence[str]] = None) -> OpProgram:
    """Grow one random valid program under ``default_rng(seed)``."""
    rng = np.random.default_rng(seed)
    universe = list(ops) if ops else sorted(TEMPLATES)
    builder = ProgramBuilder(seed)
    target = int(rng.integers(3, max(4, max_ops + 1)))
    attempts = 0
    while len(builder.program.nodes) < target and attempts < target * 8:
        attempts += 1
        key = universe[int(rng.integers(len(universe)))]
        TEMPLATES[key](rng, builder)
    return builder.program


def single_op_program(seed: int, key: str,
                      emissions: int = 4) -> OpProgram:
    """A small program exercising one template several times.

    Multiple emissions per program matter: templates draw structural
    modes (full vs. axis reduction, bias vs. no bias, ...) at random,
    and rule inference must see every mode or it fits relations that
    are merely coincidences of one mode.
    """
    rng = np.random.default_rng(seed)
    builder = ProgramBuilder(seed)
    for _ in range(emissions * 4):
        if len(builder.program.nodes) >= emissions:
            break
        TEMPLATES[key](rng, builder)
    return builder.program


def calibration_programs(seed: int, per_op: int = 6,
                         chained: int = 8,
                         ops: Optional[Sequence[str]] = None
                         ) -> List[OpProgram]:
    """Programs that stretch every template across diverse shapes.

    Rule inference runs over harvest **plus** these, so a rule must
    survive the generator's own shape distribution before the oracle
    enforces it on fresh programs — this is what keeps statistically
    overfit relations (true for one workload's shapes only) from
    producing false divergences later.
    """
    base = 1_000_000_007 + seed * 9_973
    programs: List[OpProgram] = []
    for index, key in enumerate(sorted(ops if ops else TEMPLATES)):
        for round_no in range(per_op):
            programs.append(single_op_program(
                base + index * 101 + round_no, key))
    for round_no in range(chained):
        programs.append(generate_program(base + 50_021 + round_no,
                                         max_ops=10, ops=ops))
    return programs


# ---------------------------------------------------------------------------
# perturbed workload configs
# ---------------------------------------------------------------------------

#: boundary parameter grids per roster workload: degenerate KBs, unit
#: and tiny hypervector dims, extreme sparsity, boundary matrix sizes
WORKLOAD_PARAM_SPACE: Dict[str, Dict[str, Tuple[object, ...]]] = {
    "lnn": {
        "num_departments": (1, 2),
        "professors_per_dept": (1, 2, 4),
    },
    "nvsa": {
        "matrix_size": (1, 2, 3),
        "dim": (16, 64, 256),
    },
}


def perturb_configs(seed: int, count: int
                    ) -> List[Tuple[str, Dict[str, object]]]:
    """Seeded boundary configurations for the roster workloads."""
    rng = np.random.default_rng(seed)
    names = sorted(WORKLOAD_PARAM_SPACE)
    out: List[Tuple[str, Dict[str, object]]] = []
    for _ in range(count):
        name = names[int(rng.integers(len(names)))]
        space = WORKLOAD_PARAM_SPACE[name]
        params = {param: values[int(rng.integers(len(values)))]
                  for param, values in sorted(space.items())}
        out.append((name, params))
    return out
