"""Chaos fuzzing of the serving layer: seeded fault/rejection schedules.

The tensor-level oracle checks that counters stay truthful; chaos mode
checks that the *service* stays classified.  A seeded
:class:`ChaosConfig` expands into a request schedule with boundary
deadlines and priorities plus per-workload :class:`FaultPlan`\\ s
drawn from every fault kind, then drives it through
:class:`~repro.serve.server.InferenceServer` twice (deterministic
schedule mode) and once through the live start/submit/stop pipeline.

The invariant under test is total classification: **every** submitted
request must reach exactly one terminal state from
:data:`~repro.serve.request.REQUEST_STATUSES`, rejections must carry a
reason from :data:`~repro.serve.queue.REJECT_REASONS`, failures must
carry an error type, and the deterministic digest of the outcome must
be identical across two runs of the same seed.  Anything else — an
unresolved future, an unclassified status, a run-to-run wobble in the
deterministic section — is a divergence.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.resilience.faults import (FAULT_ALLOC, FAULT_INF, FAULT_LATENCY,
                                     FAULT_NAN, FAULT_RAISE, FaultPlan,
                                     FaultSpec)
from repro.serve import (AdmissionPolicy, BatchPolicy, InferenceServer,
                         REJECT_REASONS, REQUEST_STATUSES, Request, Response,
                         STATUS_REJECTED, ServeConfig, make_request)
from repro.serve.tracing import (request_span_trees, span_tree_digest,
                                 verify_span_trees)

#: cheap parameterizations so a chaos run costs milliseconds per request
_CHAOS_WORKLOADS: Tuple[Tuple[str, Dict[str, object]], ...] = (
    ("lnn", {"num_departments": 1, "professors_per_dept": 2}),
    ("nvsa", {"matrix_size": 2, "dim": 64}),
)

#: deadline menu: None, already-expired, hair-trigger, generous
_DEADLINES: Tuple[Optional[float], ...] = (None, 0.0, 1e-6, 10.0)

_FAULT_MENU = (FAULT_NAN, FAULT_INF, FAULT_RAISE, FAULT_LATENCY,
               FAULT_ALLOC)


@dataclass(frozen=True)
class ChaosConfig:
    """One seeded chaos scenario."""

    seed: int = 0
    requests: int = 10
    workers: int = 2
    max_depth: int = 4          # small queue: forces queue_full shedding
    max_retries: int = 1
    timeout: Optional[float] = None


@dataclass
class ChaosReport:
    """Outcome of one chaos scenario (both runs + live smoke)."""

    config: ChaosConfig
    issues: List[str] = field(default_factory=list)
    digest: str = ""
    status_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.issues


def build_chaos_schedule(config: ChaosConfig
                         ) -> Tuple[List[Request], Dict[str, FaultPlan]]:
    """Seeded requests + fault plans; same config -> same schedule."""
    rng = np.random.default_rng(config.seed)
    schedule: List[Request] = []
    arrival = 0.0
    for rid in range(config.requests):
        name, params = _CHAOS_WORKLOADS[
            int(rng.integers(len(_CHAOS_WORKLOADS)))]
        deadline = _DEADLINES[int(rng.integers(len(_DEADLINES)))]
        schedule.append(make_request(
            rid, name, arrival=arrival, seed=int(rng.integers(3)),
            params=dict(params), priority=int(rng.integers(3)),
            deadline=deadline))
        arrival += float(rng.random()) * 0.02
    plans: Dict[str, FaultPlan] = {}
    for name, _ in _CHAOS_WORKLOADS:
        if rng.random() < 0.25:
            continue            # some workloads stay healthy
        specs: List[FaultSpec] = []
        for _ in range(int(rng.integers(1, 3))):
            kind = _FAULT_MENU[int(rng.integers(len(_FAULT_MENU)))]
            specs.append(FaultSpec(
                kind=kind, rate=float(rng.choice((0.1, 0.5, 1.0))),
                latency=0.002, blocking=False,
                transient=bool(rng.random() < 0.5),
                max_injections=2))
        plans[name] = FaultPlan(specs, seed=config.seed)
    return schedule, plans


def _server(config: ChaosConfig,
            plans: Dict[str, FaultPlan]) -> InferenceServer:
    serve_config = ServeConfig(
        workers=config.workers,
        admission=AdmissionPolicy(max_depth=config.max_depth),
        batch=BatchPolicy(max_batch_size=4, max_wait=0.005),
        timeout=config.timeout,
        max_retries=config.max_retries)
    return InferenceServer(serve_config, fault_plans=plans)


def check_serve_invariants(schedule: Sequence[Request],
                           responses: Sequence[Response]) -> List[str]:
    """Every-request-classified invariants; returns violations."""
    issues: List[str] = []
    want = {request.rid for request in schedule}
    got = [response.rid for response in responses]
    if sorted(got) != sorted(want):
        issues.append(
            f"response rids are not a bijection with the schedule: "
            f"{len(got)} responses for {len(want)} requests")
    if len(set(got)) != len(got):
        issues.append("duplicate rids in responses")
    for response in responses:
        tag = f"rid {response.rid} ({response.workload})"
        if response.status not in REQUEST_STATUSES:
            issues.append(f"{tag}: unclassified status "
                          f"{response.status!r}")
        if response.status == STATUS_REJECTED:
            if response.reject_reason not in REJECT_REASONS:
                issues.append(f"{tag}: rejected with unclassified "
                              f"reason {response.reject_reason!r}")
        else:
            # a circuit-breaker shed fails before the first attempt —
            # classified, and legitimately attempts=0
            shed = (response.status == "failed"
                    and response.error_type == "CircuitOpenError")
            if response.attempts < 1 and not shed:
                issues.append(f"{tag}: executed with attempts="
                              f"{response.attempts}")
        if response.status == "failed" and not response.error_type:
            issues.append(f"{tag}: failed without an error_type")
        if response.status == "ok" and response.deadline_exceeded:
            issues.append(f"{tag}: deadline exceeded but status ok")
        if response.queue_wait < 0 or response.modeled_latency < 0:
            issues.append(f"{tag}: negative timing "
                          f"(wait={response.queue_wait}, "
                          f"service={response.modeled_latency})")
    return issues


def deterministic_digest(responses: Sequence[Response]) -> str:
    """SHA-256 over the deterministic projection of every response."""
    digest = hashlib.sha256()
    for response in sorted(responses, key=lambda r: r.rid):
        record = {
            "rid": response.rid,
            "workload": response.workload,
            "status": response.status,
            "reject_reason": response.reject_reason,
            "bid": response.bid,
            "batch_size": response.batch_size,
            "worker": response.worker,
            "device": response.device,
            "attempts": response.attempts,
            "error_type": response.error_type,
            "deadline_exceeded": response.deadline_exceeded,
            "queue_wait": round(response.queue_wait, 9),
            "modeled_latency": round(response.modeled_latency, 9),
        }
        digest.update(json.dumps(record, sort_keys=True,
                                 separators=(",", ":")).encode())
        digest.update(b"\n")
    return digest.hexdigest()


def check_trace_invariants(responses: Sequence[Response]) -> List[str]:
    """Trace-tree invariants: every response reconstructs causally.

    Each non-rejected request must yield a rooted, gap-free span tree
    (admit → queue_wait/assemble → dispatch → execute tiling the
    ``serve:request`` root) and each rejected request a
    ``serve:admit`` span carrying its classified rejection reason —
    all checked by :func:`repro.serve.tracing.verify_span_trees` on
    the synthesized trees.
    """
    return [f"trace: {problem}"
            for problem in verify_span_trees(request_span_trees(responses),
                                             responses)]


def run_chaos_schedule(config: ChaosConfig) -> ChaosReport:
    """Deterministic-mode chaos: run the schedule twice, cross-check."""
    report = ChaosReport(config=config)
    schedule, plans = build_chaos_schedule(config)
    first = _server(config, plans).run_schedule(schedule)
    schedule_two, plans_two = build_chaos_schedule(config)
    second = _server(config, plans_two).run_schedule(schedule_two)

    report.issues.extend(check_serve_invariants(schedule, first.responses))
    # trace-tree invariants run on BOTH runs: the tree itself must be
    # well-formed and bit-identical across identical seeded runs
    report.issues.extend(check_trace_invariants(first.responses))
    report.issues.extend(
        f"[run2] {issue}"
        for issue in check_trace_invariants(second.responses))
    tree_one = span_tree_digest(request_span_trees(first.responses))
    tree_two = span_tree_digest(request_span_trees(second.responses))
    if tree_one != tree_two:
        report.issues.append(
            f"trace-tree digest differs across identical seeded runs "
            f"({tree_one[:12]} vs {tree_two[:12]})")
    digest_one = deterministic_digest(first.responses)
    digest_two = deterministic_digest(second.responses)
    report.digest = digest_one
    if digest_one != digest_two:
        report.issues.append(
            f"deterministic serve digest differs across identical "
            f"seeded runs ({digest_one[:12]} vs {digest_two[:12]})")
    for response in first.responses:
        report.status_counts[response.status] = (
            report.status_counts.get(response.status, 0) + 1)
    return report


def run_live_chaos(config: ChaosConfig,
                   drain: bool = False) -> List[str]:
    """Live-mode chaos smoke: start/submit/stop under fault plans.

    Submits a burst (stale deadlines included), stops the server, and
    asserts every pending future resolved to a classified terminal
    state — the guarantee :meth:`InferenceServer.stop` now provides
    even for requests caught between queue and batcher at shutdown.
    """
    rng = np.random.default_rng(config.seed + 7)
    _, plans = build_chaos_schedule(config)
    server = _server(config, plans)
    server.start()
    pendings = []
    try:
        for _ in range(config.requests):
            name, params = _CHAOS_WORKLOADS[
                int(rng.integers(len(_CHAOS_WORKLOADS)))]
            deadline = _DEADLINES[int(rng.integers(len(_DEADLINES)))]
            pendings.append(server.submit(
                name, seed=int(rng.integers(3)), params=dict(params),
                priority=int(rng.integers(3)), deadline=deadline))
    finally:
        server.stop(drain=drain)

    issues: List[str] = []
    for pending in pendings:
        rid = pending.request.rid
        if not pending.done():
            issues.append(f"live rid {rid}: future never resolved "
                          f"after stop(drain={drain})")
            continue
        response = pending.result(timeout=0.0)
        if response.status not in REQUEST_STATUSES:
            issues.append(f"live rid {rid}: unclassified status "
                          f"{response.status!r}")
        if (response.status == STATUS_REJECTED
                and response.reject_reason not in REJECT_REASONS):
            issues.append(f"live rid {rid}: unclassified rejection "
                          f"{response.reject_reason!r}")
    return issues


def fuzz_chaos(seed: int, count: int,
               live_every: int = 3) -> List[ChaosReport]:
    """Run ``count`` chaos scenarios; every ``live_every``-th also
    exercises the live pipeline."""
    reports: List[ChaosReport] = []
    for index in range(count):
        config = ChaosConfig(seed=seed + index,
                             requests=8 + (index % 5),
                             timeout=None if index % 2 else 2.0)
        report = run_chaos_schedule(config)
        if live_every and index % live_every == 0:
            report.issues.extend(
                f"[live] {issue}"
                for issue in run_live_chaos(config, drain=bool(index % 2)))
        reports.append(report)
    return reports
