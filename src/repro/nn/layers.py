"""Neural-network layers on the instrumented tensor runtime.

Inference-focused (the paper profiles inference): each layer is a
callable ``Module`` whose forward pass routes through
:mod:`repro.tensor.ops`, so every kernel lands in the trace with the
correct operator category — convolutions as *convolution*, linear
layers as *matmul*, activations/normalization/pooling as
*vector/element-wise*, flatten/reshape as *data transformation*.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import tensor as T
from repro.core.taxonomy import OpCategory
from repro.nn.init import kaiming, rng_for, xavier
from repro.tensor.dispatch import run_op
from repro.tensor.tensor import Tensor


class Module:
    """Base class: a parametric callable with parameter enumeration."""

    def parameters(self) -> List[np.ndarray]:
        """All parameter arrays owned by this module (recursively)."""
        out: List[np.ndarray] = []
        for value in self.__dict__.values():
            if isinstance(value, np.ndarray):
                out.append(value)
            elif isinstance(value, Module):
                out.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        out.extend(item.parameters())
        return out

    @property
    def num_parameters(self) -> int:
        return sum(int(p.size) for p in self.parameters())

    @property
    def parameter_bytes(self) -> int:
        return sum(int(p.nbytes) for p in self.parameters())

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - interface
        raise NotImplementedError


class Linear(Module):
    """Fully-connected layer: ``y = x @ W^T + b``.

    Recorded as a single GEMM event with the bias fused in — matching
    how BLAS libraries execute fully-connected layers (sgemm with a
    bias epilogue), which is what a kernel-level profiler attributes.
    """

    def __init__(self, in_features: int, out_features: int, seed: int = 0,
                 bias: bool = True):
        self.in_features = in_features
        self.out_features = out_features
        rng = rng_for(seed)
        self.weight = kaiming(rng, (out_features, in_features), in_features)
        self.bias: Optional[np.ndarray] = (
            np.zeros(out_features, dtype=np.float32) if bias else None)

    def forward(self, x: Tensor) -> Tensor:
        weight_t = self.weight.T
        rows = int(np.prod(x.shape[:-1])) if x.ndim > 1 else 1
        flops = 2.0 * rows * self.in_features * self.out_features
        inputs = [x, T.tensor(weight_t)]
        bias = self.bias
        if bias is not None:
            flops += rows * self.out_features
            inputs.append(T.tensor(bias))

        def _compute(a: np.ndarray, w: np.ndarray,
                     b: Optional[np.ndarray] = None) -> np.ndarray:
            out = a @ w
            if b is not None:
                out = out + b
            return out

        return run_op("linear", OpCategory.MATMUL, _compute, inputs,
                      flops=flops)


class Conv2d(Module):
    """2-D convolution over NCHW inputs."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, seed: int = 0,
                 bias: bool = True):
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        rng = rng_for(seed)
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = kaiming(
            rng, (out_channels, in_channels, kernel_size, kernel_size), fan_in)
        self.bias: Optional[np.ndarray] = (
            np.zeros(out_channels, dtype=np.float32) if bias else None)

    def forward(self, x: Tensor) -> Tensor:
        return T.conv2d(x, T.tensor(self.weight),
                        T.tensor(self.bias) if self.bias is not None else None,
                        stride=self.stride, padding=self.padding)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return T.relu(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return T.sigmoid(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return T.tanh(x)


class Softmax(Module):
    def __init__(self, axis: int = -1):
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return T.softmax(x, axis=self.axis)


class BatchNorm2d(Module):
    """Inference batch norm: per-channel affine scale and shift."""

    def __init__(self, channels: int, seed: int = 0):
        rng = rng_for(seed)
        self.gamma = rng.uniform(0.8, 1.2, channels).astype(np.float32)
        self.beta = rng.normal(0.0, 0.05, channels).astype(np.float32)
        self.running_mean = rng.normal(0.0, 0.1, channels).astype(np.float32)
        self.running_var = rng.uniform(0.5, 1.5, channels).astype(np.float32)

    def forward(self, x: Tensor) -> Tensor:
        c = self.gamma.size
        scale = (self.gamma / np.sqrt(self.running_var + 1e-5)).reshape(1, c, 1, 1)
        shift = (self.beta - self.running_mean * scale.reshape(c)).reshape(1, c, 1, 1)

        def _compute(a: np.ndarray) -> np.ndarray:
            return a * scale + shift

        return run_op("batchnorm2d", OpCategory.ELEMENTWISE, _compute, [x],
                      flop_factor=2.0, extra_bytes_read=scale.nbytes + shift.nbytes)


class MaxPool2d(Module):
    """Max pooling over NCHW inputs (a strided window reduction)."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        k, s = self.kernel_size, self.stride

        def _compute(a: np.ndarray) -> np.ndarray:
            windows = np.lib.stride_tricks.sliding_window_view(
                a, (k, k), axis=(2, 3))[:, :, ::s, ::s]
            return windows.max(axis=(-2, -1))

        n, c, h, w = x.shape
        out_elems = n * c * ((h - k) // s + 1) * ((w - k) // s + 1)
        return run_op("maxpool2d", OpCategory.ELEMENTWISE, _compute, [x],
                      flops=float(out_elems * k * k))


class AvgPool2d(Module):
    """Average pooling over NCHW inputs."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        k, s = self.kernel_size, self.stride

        def _compute(a: np.ndarray) -> np.ndarray:
            windows = np.lib.stride_tricks.sliding_window_view(
                a, (k, k), axis=(2, 3))[:, :, ::s, ::s]
            return windows.mean(axis=(-2, -1))

        n, c, h, w = x.shape
        out_elems = n * c * ((h - k) // s + 1) * ((w - k) // s + 1)
        return run_op("avgpool2d", OpCategory.ELEMENTWISE, _compute, [x],
                      flops=float(out_elems * k * k))


class GlobalAvgPool(Module):
    """Mean over spatial dims, producing (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return run_op("global_avgpool", OpCategory.ELEMENTWISE,
                      lambda a: a.mean(axis=(2, 3)), [x],
                      flops=float(x.size))


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        n = x.shape[0]
        return T.reshape(x, (n, -1))


class Sequential(Module):
    """Ordered composition of modules."""

    def __init__(self, *modules: Module):
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)


class Residual(Module):
    """Residual wrapper: ``y = x + inner(x)``."""

    def __init__(self, inner: Module):
        self.inner = inner

    def forward(self, x: Tensor) -> Tensor:
        return T.add(x, self.inner(x))


class MLP(Module):
    """Multi-layer perceptron with ReLU hidden activations."""

    def __init__(self, sizes: Sequence[int], seed: int = 0,
                 final_activation: Optional[str] = None):
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        self.layers = [
            Linear(sizes[i], sizes[i + 1], seed=seed + i)
            for i in range(len(sizes) - 1)
        ]
        self.final_activation = final_activation

    def forward(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < len(self.layers) - 1:
                x = T.relu(x)
        if self.final_activation == "sigmoid":
            x = T.sigmoid(x)
        elif self.final_activation == "softmax":
            x = T.softmax(x)
        elif self.final_activation == "tanh":
            x = T.tanh(x)
        return x


def conv_block(in_ch: int, out_ch: int, seed: int = 0, stride: int = 1,
               kernel_size: int = 3) -> Sequential:
    """Conv -> BatchNorm -> ReLU, the standard perception building block."""
    padding = kernel_size // 2
    return Sequential(
        Conv2d(in_ch, out_ch, kernel_size, stride=stride, padding=padding,
               seed=seed),
        BatchNorm2d(out_ch, seed=seed + 1),
        ReLU(),
    )


def small_convnet(in_channels: int, num_classes: int, seed: int = 0,
                  widths: Tuple[int, ...] = (32, 64, 128)) -> Sequential:
    """A compact perception ConvNet (NVSA/PrAE-frontend-like)."""
    blocks: List[Module] = []
    ch = in_channels
    for i, width in enumerate(widths):
        blocks.append(conv_block(ch, width, seed=seed + 10 * i))
        blocks.append(MaxPool2d(2))
        ch = width
    blocks.append(GlobalAvgPool())
    blocks.append(Linear(ch, num_classes, seed=seed + 1000))
    return Sequential(*blocks)
