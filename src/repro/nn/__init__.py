"""Neural-network substrate (numpy-backed, instrumentation-aware)."""

from repro.nn.init import kaiming, rng_for, xavier
from repro.nn.layers import (MLP, AvgPool2d, BatchNorm2d, Conv2d, Flatten,
                             GlobalAvgPool, Linear, MaxPool2d, Module, ReLU,
                             Residual, Sequential, Sigmoid, Softmax, Tanh,
                             conv_block, small_convnet)

__all__ = [
    "kaiming", "rng_for", "xavier",
    "MLP", "AvgPool2d", "BatchNorm2d", "Conv2d", "Flatten", "GlobalAvgPool",
    "Linear", "MaxPool2d", "Module", "ReLU", "Residual", "Sequential",
    "Sigmoid", "Softmax", "Tanh", "conv_block", "small_convnet",
]
