"""Deterministic parameter initializers.

The characterization study needs realistic layer *shapes*, not trained
weights (runtime/memory/operator statistics are weight-value-invariant),
so all networks initialize deterministically from a seed.
"""

from __future__ import annotations

import numpy as np


def rng_for(seed: int) -> np.random.Generator:
    """A reproducible generator for parameter initialization."""
    return np.random.default_rng(seed)


def kaiming(rng: np.random.Generator, shape: tuple, fan_in: int,
            dtype: object = np.float32) -> np.ndarray:
    """He-normal initialization (standard for ReLU networks)."""
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(dtype)


def xavier(rng: np.random.Generator, shape: tuple, fan_in: int,
           fan_out: int, dtype: object = np.float32) -> np.ndarray:
    """Glorot-uniform initialization (used for sigmoid/tanh heads)."""
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape).astype(dtype)
