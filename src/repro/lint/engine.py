"""Lint engine: file discovery, parsing, check execution, suppression.

The engine is deliberately self-contained (stdlib ``ast`` only).  It
walks every ``*.py`` file under the scan root (by default the installed
``repro`` package), parses each into a :class:`ModuleSource` — source,
AST, import-alias tables, zone membership — and feeds them to the
registered checks.  Findings then pass through two suppression layers:

1. inline pragmas (``# repro-lint: disable=RL001 -- reason``), counted
   but dropped;
2. the committed baseline (handled by the CLI, not here, so callers
   can distinguish new from grandfathered findings).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import SEVERITY_ERROR, Finding
from repro.lint.pragmas import PragmaIndex
from repro.lint.registry import LintCheck, all_checks

#: Package sub-trees whose compute must route through ``repro.tensor``
#: (the instrumented zones of RL001/RL003).
DEFAULT_ZONES: Tuple[str, ...] = ("workloads", "vsa", "nn", "logic",
                                  "serve", "fuzz", "compile")

#: Check id used for files the engine itself cannot process.
PARSE_ERROR_ID = "RL000"


def default_scan_root() -> Path:
    """The installed ``repro`` package directory."""
    import repro
    return Path(repro.__file__).resolve().parent


@dataclass
class LintConfig:
    """What to scan and which checks to run."""

    root: Path
    zones: Tuple[str, ...] = DEFAULT_ZONES
    select: Optional[Set[str]] = None  #: check ids; None = all
    ignore: Optional[Set[str]] = None  #: check ids dropped after select

    @classmethod
    def for_package(cls, select: Optional[Set[str]] = None,
                    ignore: Optional[Set[str]] = None) -> "LintConfig":
        return cls(root=default_scan_root(), select=select, ignore=ignore)


class ModuleSource:
    """One parsed module plus the lookup tables checks keep needing."""

    def __init__(self, path: Path, relpath: str, source: str,
                 tree: ast.Module):
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = tree
        self.pragmas = PragmaIndex.from_source(source)
        #: alias -> dotted sub-module path inside the aliased package,
        #: e.g. ``import numpy as np`` -> {"np": ""}; ``import
        #: numpy.fft as nf`` -> {"nf": "fft"}.  Keyed per package.
        self.module_aliases: Dict[str, Dict[str, str]] = {}
        #: bare name -> dotted function path, from ``from pkg import x``
        self.func_aliases: Dict[str, Dict[str, str]] = {}
        self._index_imports()

    # -- imports ---------------------------------------------------------------
    def _index_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    parts = alias.name.split(".")
                    package, rest = parts[0], ".".join(parts[1:])
                    bound = alias.asname or parts[0]
                    if alias.asname is None and rest:
                        # ``import numpy.fft`` binds ``numpy``
                        rest = ""
                    self.module_aliases.setdefault(package, {})[bound] = rest
            elif isinstance(node, ast.ImportFrom) and node.module:
                parts = node.module.split(".")
                package, rest = parts[0], ".".join(parts[1:])
                for alias in node.names:
                    bound = alias.asname or alias.name
                    dotted = f"{rest}.{alias.name}" if rest else alias.name
                    self.func_aliases.setdefault(package, {})[bound] = dotted

    def resolve_call(self, package: str, func: ast.expr) -> Optional[str]:
        """Dotted path of ``func`` inside ``package``, or ``None``.

        ``np.fft.rfft`` resolves to ``fft.rfft`` when ``np`` aliases
        numpy; a bare ``rfft`` resolves to ``fft.rfft`` when imported
        with ``from numpy.fft import rfft``.
        """
        if isinstance(func, ast.Name):
            return self.func_aliases.get(package, {}).get(func.id)
        if isinstance(func, ast.Attribute):
            chain: List[str] = []
            node: ast.expr = func
            while isinstance(node, ast.Attribute):
                chain.append(node.attr)
                node = node.value
            if not isinstance(node, ast.Name):
                return None
            chain.reverse()
            modules = self.module_aliases.get(package, {})
            if node.id in modules:
                prefix = modules[node.id]
                return ".".join(([prefix] if prefix else []) + chain)
            funcs = self.func_aliases.get(package, {})
            if node.id in funcs:
                return ".".join([funcs[node.id]] + chain)
        return None

    def zone(self, zones: Sequence[str]) -> Optional[str]:
        """The instrumented zone this module belongs to, if any."""
        head = self.relpath.split("/", 1)[0]
        return head if head in zones else None


@dataclass
class LintContext:
    """Mutable state shared by the engine and the checks."""

    config: LintConfig
    findings: List[Finding] = field(default_factory=list)
    #: scratch space for cross-module checks, keyed by check id
    state: Dict[str, object] = field(default_factory=dict)

    def report(self, check: LintCheck, module_relpath: str, line: int,
               col: int, message: str) -> None:
        self.findings.append(Finding(
            path=module_relpath, line=line, col=col,
            check_id=check.check_id, severity=check.severity,
            message=message))


@dataclass
class LintResult:
    """Outcome of one engine run (before baseline filtering)."""

    findings: List[Finding]
    suppressed: List[Finding]     #: dropped by inline pragmas
    files_scanned: int
    checks_run: Tuple[str, ...]

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity != SEVERITY_ERROR]


def discover_files(root: Path) -> List[Path]:
    """All ``*.py`` files under ``root`` (skipping ``__pycache__``)."""
    if root.is_file():
        return [root]
    return sorted(p for p in root.rglob("*.py")
                  if "__pycache__" not in p.parts)


def run_lint(config: LintConfig) -> LintResult:
    """Run all (selected) checks over the configured tree."""
    # importing the check modules populates the registry
    import repro.lint.checks  # noqa: F401
    import repro.lint.clocks  # noqa: F401
    import repro.lint.compiled  # noqa: F401
    import repro.lint.concurrency  # noqa: F401
    import repro.lint.tracing  # noqa: F401

    checks = [cls() for cls in all_checks()
              if (config.select is None or cls.check_id in config.select)
              and (config.ignore is None
                   or cls.check_id not in config.ignore)]
    ctx = LintContext(config=config)
    modules: List[ModuleSource] = []
    root = config.root.resolve()

    files = discover_files(root)
    for path in files:
        relpath = (path.relative_to(root).as_posix()
                   if path != root else path.name)
        try:
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError, ValueError) as exc:
            ctx.findings.append(Finding(
                path=relpath, line=getattr(exc, "lineno", 1) or 1, col=0,
                check_id=PARSE_ERROR_ID, severity=SEVERITY_ERROR,
                message=f"cannot analyze module: {exc}"))
            continue
        modules.append(ModuleSource(path, relpath, source, tree))

    for module in modules:
        for check in checks:
            check.visit_module(module, ctx)
    for check in checks:
        check.finalize(ctx)

    pragma_index = {m.relpath: m.pragmas for m in modules}
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in sorted(ctx.findings, key=lambda f: f.sort_key):
        pragmas = pragma_index.get(finding.path)
        if pragmas is not None and pragmas.suppresses(finding.check_id,
                                                      finding.line):
            suppressed.append(finding)
        else:
            kept.append(finding)
    return LintResult(findings=kept, suppressed=suppressed,
                      files_scanned=len(files),
                      checks_run=tuple(c.check_id for c in checks))
