"""RL107: raw clock reads must route through ``repro.obs.clock``.

The self-profiling ledger, span timeline, serve telemetry, and the
longitudinal perf history all share one measurement substrate: the
approved clock helpers in :mod:`repro.obs.clock` (``perf_s`` /
``perf_ns``).  A module that reads ``time.perf_counter()`` (or any
other raw clock) directly forks that substrate — its timestamps can
disagree with the span epoch, escape the single choke point where a
deterministic test clock could be injected, and silently skew the
very overhead numbers this suite exists to report.

The check resolves calls through the engine's import-alias tables, so
``import time as t; t.monotonic()`` and ``from time import
perf_counter`` are both caught.  ``time.sleep`` and friends are not
clock *reads* and stay legal.  The one module allowed to touch the
raw clocks is ``obs/clock.py`` itself.
"""

from __future__ import annotations

import ast

from repro.lint.engine import LintContext, ModuleSource
from repro.lint.findings import SEVERITY_ERROR
from repro.lint.registry import LintCheck, register_check

#: the single module allowed to read raw clocks
_EXEMPT_RELPATHS = ("obs/clock.py",)

#: ``time.<func>`` clock reads that must route through the helpers
_CLOCK_FUNCS = frozenset({
    "time", "time_ns",
    "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns",
    "process_time", "process_time_ns",
    "thread_time", "thread_time_ns",
    "clock_gettime", "clock_gettime_ns",
})


class _ClockVisitor(ast.NodeVisitor):
    def __init__(self, check: "RawClockRead", module: ModuleSource,
                 ctx: LintContext):
        self.check = check
        self.module = module
        self.ctx = ctx

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.module.resolve_call("time", node.func)
        if resolved in _CLOCK_FUNCS:
            helper = ("perf_ns" if resolved.endswith("_ns")
                      else "perf_s")
            self.ctx.report(
                self.check, self.module.relpath, node.lineno,
                node.col_offset,
                f"raw clock read time.{resolved}(); route through "
                f"repro.obs.clock.{helper}() so all timestamps share "
                f"one substrate (span epoch, ledger probes, serve "
                f"telemetry) and tests can inject a clock at a single "
                f"choke point")
        self.generic_visit(node)


@register_check
class RawClockRead(LintCheck):
    check_id = "RL107"
    name = "raw-clock-read"
    description = ("raw time.* clock reads must route through the "
                   "approved helpers in repro.obs.clock")
    severity = SEVERITY_ERROR
    example = (
        "start = time.perf_counter()          # RL107: raw clock\n"
        "# fix:\n"
        "from repro.obs.clock import perf_s\n"
        "start = perf_s()\n")

    def visit_module(self, module: ModuleSource, ctx: LintContext) -> None:
        if module.relpath in _EXEMPT_RELPATHS:
            return
        _ClockVisitor(self, module, ctx).visit(module.tree)
