"""Pluggable check registry.

A check subclasses :class:`LintCheck` and registers itself with the
:func:`register_check` decorator.  The engine calls ``visit_module``
once per parsed module and ``finalize`` once after the whole tree has
been visited — cross-module invariants (e.g. RL002's registry
coverage) accumulate state on the context during visits and report in
``finalize``.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.lint.findings import SEVERITY_ERROR


class LintCheck:
    """Base class for one instrumentation-soundness check."""

    check_id: str = ""
    name: str = ""
    description: str = ""
    severity: str = SEVERITY_ERROR
    #: short illustrative snippet for ``repro lint explain <id>``
    example: str = ""

    def visit_module(self, module: "ModuleSource",  # noqa: F821
                     ctx: "LintContext") -> None:  # noqa: F821
        """Inspect one parsed module (override)."""

    def finalize(self, ctx: "LintContext") -> None:  # noqa: F821
        """Report cross-module findings after all visits (override)."""


_CHECKS: Dict[str, Type[LintCheck]] = {}


def register_check(cls: Type[LintCheck]) -> Type[LintCheck]:
    """Class decorator adding ``cls`` to the global check registry."""
    if not cls.check_id:
        raise ValueError(f"{cls.__name__} must set check_id")
    if cls.check_id in _CHECKS:
        raise ValueError(f"duplicate check id {cls.check_id!r}")
    _CHECKS[cls.check_id] = cls
    return cls


def all_checks() -> List[Type[LintCheck]]:
    """Registered check classes, ordered by check id."""
    return [_CHECKS[key] for key in sorted(_CHECKS)]
