"""``python -m repro lint`` command handler.

Exit codes follow the ``faults`` convention: 0 clean, 2 findings
(errors, or warnings under ``--strict``), 3 internal error (bad
baseline, unreadable scan root).
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional, Set

from repro.lint.baseline import (DEFAULT_BASELINE_NAME, BaselineError,
                                 load_baseline, split_baselined,
                                 write_baseline)
from repro.lint.engine import LintConfig, default_scan_root, run_lint
from repro.lint.findings import SEVERITY_ERROR
from repro.lint.report import render_json, render_text

EXIT_CLEAN = 0
EXIT_FINDINGS = 2
EXIT_INTERNAL = 3


def add_lint_arguments(cmd: argparse.ArgumentParser) -> None:
    """Attach the lint options to an argparse sub-command."""
    cmd.add_argument("paths", nargs="*",
                     help="files/directories to scan (default: the "
                          "installed repro package)")
    cmd.add_argument("--format", choices=("text", "json"), default="text",
                     dest="output_format",
                     help="report format (default text)")
    cmd.add_argument("--baseline", default=None,
                     help=f"baseline JSON (default ./{DEFAULT_BASELINE_NAME} "
                          f"when present)")
    cmd.add_argument("--update-baseline", action="store_true",
                     help="rewrite the baseline from current findings "
                          "and exit 0")
    cmd.add_argument("--strict", action="store_true",
                     help="treat warnings as errors (CI mode)")
    cmd.add_argument("--select", default=None,
                     help="comma-separated check ids to run; a family "
                          "wildcard like RL1xx selects every "
                          "registered RL1-series check (default: all)")
    cmd.add_argument("--ignore", default=None,
                     help="comma-separated check ids (or RL1xx-style "
                          "families) to skip")


def _registered_ids() -> List[str]:
    import repro.lint.checks  # noqa: F401
    import repro.lint.concurrency  # noqa: F401
    import repro.lint.tracing  # noqa: F401
    from repro.lint.registry import all_checks
    return [cls.check_id for cls in all_checks()]


def _expand_checks(spec: str) -> Set[str]:
    """Parse a --select/--ignore spec, expanding RL1xx-style families."""
    out: Set[str] = set()
    known = _registered_ids()
    for part in spec.split(","):
        part = part.strip().upper()
        if not part:
            continue
        if part.endswith("X"):
            prefix = part.rstrip("X")
            matches = [cid for cid in known
                       if cid.startswith(prefix) and len(cid) == len(part)]
            out.update(matches or (part,))
        else:
            out.add(part)
    return out


def _explain_command(check_id: str) -> int:
    import repro.lint.checks  # noqa: F401
    import repro.lint.concurrency  # noqa: F401
    import repro.lint.tracing  # noqa: F401
    from repro.lint.registry import all_checks
    wanted = check_id.strip().upper()
    for cls in all_checks():
        if cls.check_id != wanted:
            continue
        print(f"{cls.check_id} ({cls.name}) — severity: {cls.severity}")
        print()
        print(f"  {cls.description}")
        if cls.example:
            print()
            print("  example:")
            for line in cls.example.rstrip().splitlines():
                print(f"    {line}")
        return EXIT_CLEAN
    known = ", ".join(_registered_ids())
    print(f"repro lint explain: unknown check {wanted!r} (known: {known})")
    return EXIT_INTERNAL


def _resolve_baseline(args: argparse.Namespace) -> Optional[Path]:
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path.cwd() / DEFAULT_BASELINE_NAME
    return default if default.exists() else None


def run_lint_command(args: argparse.Namespace) -> int:
    if args.paths and args.paths[0] == "explain":
        if len(args.paths) != 2:
            print("usage: repro lint explain <check-id>")
            return EXIT_INTERNAL
        return _explain_command(args.paths[1])

    select: Optional[Set[str]] = None
    if args.select:
        select = _expand_checks(args.select)
    ignore: Optional[Set[str]] = None
    if getattr(args, "ignore", None):
        ignore = _expand_checks(args.ignore)

    roots = [Path(p) for p in args.paths] if args.paths else [
        default_scan_root()]
    missing = [str(r) for r in roots if not r.exists()]
    if missing:
        print(f"repro lint: no such path: {', '.join(missing)}")
        return EXIT_INTERNAL

    result = run_lint(LintConfig(root=roots[0], select=select,
                                 ignore=ignore))
    for root in roots[1:]:
        extra = run_lint(LintConfig(root=root, select=select,
                                    ignore=ignore))
        result.findings.extend(extra.findings)
        result.suppressed.extend(extra.suppressed)
        result.files_scanned += extra.files_scanned
    findings = result.findings

    baseline_path = _resolve_baseline(args)
    if args.update_baseline:
        target = baseline_path or Path.cwd() / DEFAULT_BASELINE_NAME
        write_baseline(target, findings)
        print(f"repro lint: wrote {len(findings)} finding(s) to {target}")
        return EXIT_CLEAN

    grandfathered: List = []
    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"repro lint: {exc}")
            return EXIT_INTERNAL
        findings, grandfathered = split_baselined(findings, baseline)

    if args.output_format == "json":
        print(render_json(result, findings, grandfathered,
                          strict=args.strict))
    else:
        print(render_text(result, findings, grandfathered))

    failing = [f for f in findings
               if args.strict or f.severity == SEVERITY_ERROR]
    return EXIT_FINDINGS if failing else EXIT_CLEAN
