"""Baseline file: grandfathered findings that do not fail the build.

The baseline is a committed JSON document listing known findings by
fingerprint (path, check id, message) with the line recorded for
humans.  Matching is by fingerprint with multiplicity — two identical
violations in one file need two baseline entries — and tolerates line
drift from unrelated edits.  ``repro lint --update-baseline`` rewrites
the file from the current findings; entries that no longer match
anything are dropped on rewrite, so the baseline only ever shrinks
unless violations are deliberately re-grandfathered.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import List, Tuple

from repro.lint.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"


class BaselineError(RuntimeError):
    """The baseline file is unreadable or malformed."""


def load_baseline(path: Path) -> Counter:
    """Read ``path`` into a fingerprint multiset."""
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or "findings" not in payload:
        raise BaselineError(
            f"baseline {path} must be an object with a 'findings' list")
    fingerprints: Counter = Counter()
    for entry in payload["findings"]:
        try:
            fingerprints[(entry["path"], entry["check_id"],
                          entry["message"])] += 1
        except (TypeError, KeyError) as exc:
            raise BaselineError(
                f"baseline {path}: malformed entry {entry!r}") from exc
    return fingerprints


def split_baselined(findings: List[Finding],
                    baseline: Counter) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into (new, grandfathered)."""
    remaining = Counter(baseline)
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        if remaining.get(finding.fingerprint, 0) > 0:
            remaining[finding.fingerprint] -= 1
            old.append(finding)
        else:
            new.append(finding)
    return new, old


def write_baseline(path: Path, findings: List[Finding]) -> None:
    """Serialize ``findings`` as the new baseline."""
    payload = {
        "version": BASELINE_VERSION,
        "comment": ("Grandfathered repro-lint findings. Shrink me: fix "
                    "the violation or add an inline pragma with a "
                    "reason, then run `repro lint --update-baseline`."),
        "findings": [
            {"path": f.path, "check_id": f.check_id, "line": f.line,
             "message": f.message}
            for f in sorted(findings, key=lambda f: f.sort_key)
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
