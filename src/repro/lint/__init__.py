"""repro.lint — AST-based instrumentation-soundness checker.

Static analysis over the suite's own source tree: the figures this
repository reproduces are only as good as the counters the
instrumented runtime collects, so the linter enforces the invariants
that keep those counters honest (no raw-numpy bypasses in instrumented
zones, run_op names consistent with the op taxonomy, workloads
entering their declared phases, deterministic RNG/clock usage, and
context-stack discipline).

The RL100 series adds whole-program concurrency soundness on top of
the per-file checks: :func:`repro.lint.program.build_program` links
every module into one :class:`~repro.lint.program.Program` (symbol
table, call graph, thread entrypoints, lock contexts, sharing taint)
and ``repro.lint.concurrency`` runs five checks over it — RL101
unsynchronized shared state, RL102 lock-order cycles, RL103 thread
escapes without a defensive copy, RL104 process-boundary pickle
readiness, RL105 blocking calls under a lock.

Programmatic entry point::

    from repro.lint import LintConfig, run_lint
    result = run_lint(LintConfig.for_package())
    assert not result.errors

CLI::

    python -m repro lint [--format json] [--baseline PATH] [--strict]
"""

from repro.lint.baseline import (DEFAULT_BASELINE_NAME, BaselineError,
                                 load_baseline, split_baselined,
                                 write_baseline)
from repro.lint.engine import (DEFAULT_ZONES, LintConfig, LintContext,
                               LintResult, ModuleSource, default_scan_root,
                               discover_files, run_lint)
from repro.lint.findings import (SEVERITY_ERROR, SEVERITY_WARNING, Finding)
from repro.lint.pragmas import PragmaIndex
from repro.lint.program import Program, build_program
from repro.lint.registry import LintCheck, all_checks, register_check
from repro.lint.report import render_json, render_text

__all__ = [
    "DEFAULT_BASELINE_NAME", "DEFAULT_ZONES",
    "BaselineError", "Finding", "LintCheck", "LintConfig", "LintContext",
    "LintResult", "ModuleSource", "PragmaIndex", "Program",
    "SEVERITY_ERROR", "SEVERITY_WARNING",
    "all_checks", "build_program", "default_scan_root", "discover_files",
    "load_baseline", "register_check", "render_json", "render_text",
    "run_lint", "split_baselined", "write_baseline",
]
