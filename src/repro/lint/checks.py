"""The five instrumentation-soundness checks (RL001-RL005).

Every figure the suite reproduces is computed from counters emitted by
the instrumented tensor runtime, so each check guards one way those
counters can silently go wrong:

* **RL001** — raw numpy compute inside the instrumented zones bypasses
  ``repro.tensor.dispatch``; its FLOPs/bytes never reach the trace.
* **RL002** — op names recorded by ``run_op`` must agree with the
  public :data:`repro.core.taxonomy.OP_CATEGORIES` registry (both
  directions), or Fig. 3a's six-way category split misclassifies work;
  category-keyed model tables (``obs/kstats.CATEGORY_MIX``) must key
  exactly the ``OpCategory`` values for the same reason.
* **RL003** — a registered workload whose ``run()`` never enters both
  ``phase("neural")`` and ``phase("symbolic")`` produces traces the
  Fig. 2a neural/symbolic split cannot attribute.
* **RL004** — legacy global RNG calls and ``time.time()`` make traces
  non-reproducible / non-monotonic; use ``np.random.default_rng`` and
  ``time.perf_counter``.
* **RL005** — mutating the thread-local profile/fault-hook stacks —
  or the observability layer's span/collector/metrics-runtime stacks,
  or the serving pool's worker-context stack — outside the approved
  context managers corrupts phase labels, span parent links, and hook
  pairing for every event that follows; on the serving worker path an
  unbalanced enter/exit additionally mislabels every later batch.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.findings import SEVERITY_ERROR, SEVERITY_WARNING
from repro.lint.registry import LintCheck, register_check

# ---------------------------------------------------------------------------
# RL001 — raw numpy compute bypassing the instrumented runtime
# ---------------------------------------------------------------------------

#: numpy functions that do material FLOP work.  Cheap host-side helpers
#: (``np.argmax`` over eight candidate scores, scalar ``np.sqrt``) are
#: deliberately absent: flagging them would bury the real bypasses in
#: pragma noise.
_NUMPY_COMPUTE: Set[str] = {
    "exp", "expm1", "log", "log2", "log10", "log1p",
    "tanh", "sinh", "cosh",
    "matmul", "dot", "vdot", "inner", "outer", "einsum", "tensordot",
    "convolve", "correlate", "power",
}
_NUMPY_COMPUTE_PREFIXES: Tuple[str, ...] = ("fft.", "linalg.")


@register_check
class RawNumpyBypass(LintCheck):
    check_id = "RL001"
    name = "raw-numpy-bypass"
    description = ("numpy compute inside the instrumented zones must "
                   "route through repro.tensor ops")
    severity = SEVERITY_ERROR

    def visit_module(self, module, ctx) -> None:
        if module.zone(ctx.config.zones) is None:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolve_call("numpy", node.func)
            if dotted is None:
                continue
            if (dotted in _NUMPY_COMPUTE
                    or dotted.startswith(_NUMPY_COMPUTE_PREFIXES)):
                ctx.report(
                    self, module.relpath, node.lineno, node.col_offset,
                    f"raw numpy compute np.{dotted} bypasses the "
                    f"instrumented tensor runtime; its FLOPs/bytes never "
                    f"reach the trace — route it through repro.tensor "
                    f"ops (or pragma it with a reason)")


# ---------------------------------------------------------------------------
# RL002 — op-name <-> taxonomy-registry coverage
# ---------------------------------------------------------------------------

def _attribute_chain(func: ast.expr) -> Optional[List[str]]:
    chain: List[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        chain.append(node.id)
        chain.reverse()
        return chain
    return None


def _call_name(func: ast.expr) -> Optional[str]:
    """Trailing identifier of a call target (``x.y.run_op`` -> run_op)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _static_op_name(arg: ast.expr) -> Optional[Tuple[str, bool]]:
    """(name-or-prefix, is_prefix) of a run_op name argument."""
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value, False
    if isinstance(arg, ast.JoinedStr) and arg.values:
        first = arg.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value, True
    return None


#: module-level dict literals keyed by ``OpCategory.value`` strings.
#: RL002 validates their keys against the taxonomy in both directions:
#: an unknown key silently drops events from the counter synthesis and
#: a missing category folds its events through the wrong mix.
_CATEGORY_TABLE_NAMES: Tuple[str, ...] = ("CATEGORY_MIX",)


@register_check
class TaxonomyCoverage(LintCheck):
    check_id = "RL002"
    name = "taxonomy-coverage"
    description = ("run_op names and OP_CATEGORIES must agree in both "
                   "directions")
    severity = SEVERITY_ERROR

    def _state(self, ctx) -> Dict[str, object]:
        return ctx.state.setdefault(self.check_id, {
            "used_keys": set(),           # registry keys seen at call sites
            "anchor": None,               # (relpath, line) of OP_CATEGORIES
        })

    def visit_module(self, module, ctx) -> None:
        from repro.core.taxonomy import OP_CATEGORIES, canonical_op_name
        state = self._state(ctx)

        # locate the registry definition for anchoring finalize findings
        if module.relpath.endswith("core/taxonomy.py"):
            for node in module.tree.body:
                if (isinstance(node, (ast.Assign, ast.AnnAssign))
                        and any(isinstance(t, ast.Name)
                                and t.id == "OP_CATEGORIES"
                                for t in (node.targets
                                          if isinstance(node, ast.Assign)
                                          else [node.target]))):
                    state["anchor"] = (module.relpath, node.lineno)

        self._check_category_tables(module, ctx)

        category_aliases = self._category_aliases(module.tree)
        forwarders = self._forwarders(module.tree)
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and node.args):
                continue
            callee = _call_name(node.func)
            if callee == "run_op":
                name_arg = node.args[0]
                explicit = self._explicit_category(node, category_aliases)
            elif callee in forwarders:
                index, explicit = forwarders[callee]
                if index >= len(node.args):
                    continue
                name_arg = node.args[index]
            else:
                continue
            parsed = _static_op_name(name_arg)
            if parsed is None:
                continue
            raw, is_prefix = parsed
            stem = canonical_op_name(raw)
            matched = self._match_registry(
                OP_CATEGORIES, stem,
                is_prefix and "[" not in raw)
            if matched is None:
                ctx.report(
                    self, module.relpath, node.lineno, node.col_offset,
                    f"op name {raw!r} recorded by run_op has no entry in "
                    f"repro.core.taxonomy.OP_CATEGORIES; register it so "
                    f"the Fig. 3a category split stays exhaustive")
                continue
            key, registry_category = matched
            state["used_keys"].update(
                k for k in OP_CATEGORIES
                if k == key or k.startswith(stem))
            if explicit is not None and explicit != registry_category.name:
                ctx.report(
                    self, module.relpath, node.lineno, node.col_offset,
                    f"op {raw!r} passes OpCategory.{explicit} but "
                    f"OP_CATEGORIES maps it to "
                    f"OpCategory.{registry_category.name}; deduplicate "
                    f"the drift (the registry is authoritative)")

    def _check_category_tables(self, module, ctx) -> None:
        """Category-keyed tables stay in lockstep with the taxonomy.

        A table in :data:`_CATEGORY_TABLE_NAMES`
        (``obs/kstats.CATEGORY_MIX`` today) must key exactly the
        ``OpCategory`` *value* strings: an unknown key is dead weight
        that masks a typo and a missing category makes the counter
        synthesis ``KeyError`` on the first event of that category.
        """
        from repro.core.taxonomy import OpCategory
        valid = {category.value for category in OpCategory}
        for node in module.tree.body:
            if isinstance(node, ast.AnnAssign):
                targets = [node.target]
                value = node.value
            elif isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            else:
                continue
            if not any(isinstance(t, ast.Name)
                       and t.id in _CATEGORY_TABLE_NAMES
                       for t in targets):
                continue
            if not isinstance(value, ast.Dict):
                continue
            table = next(t.id for t in targets
                         if isinstance(t, ast.Name))
            keys: Set[str] = set()
            for key in value.keys:
                if not (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)):
                    continue  # computed keys are not statically checkable
                keys.add(key.value)
                if key.value not in valid:
                    ctx.report(
                        self, module.relpath, key.lineno,
                        key.col_offset,
                        f"{table} key {key.value!r} is not an "
                        f"OpCategory value; events can never resolve "
                        f"to it through repro.core.taxonomy — fix the "
                        f"typo or drop the entry")
            for missing in sorted(valid - keys):
                ctx.report(
                    self, module.relpath, node.lineno, node.col_offset,
                    f"{table} has no entry for OpCategory value "
                    f"{missing!r}; the per-category counter synthesis "
                    f"would KeyError on the first {missing} event")

    def _forwarders(self, tree: ast.Module) -> Dict[str, Tuple[int, Optional[str]]]:
        """Module-local helpers that forward a name parameter to run_op.

        ``ops.py`` builds most elementwise/reduction ops through
        factories like ``_binary(name, fn, a, b)``; the static op name
        lives at the factory's call sites.  This resolves one hop: a
        FunctionDef whose body calls ``run_op(<param>, ...)`` maps its
        name to ``(param index, category passed by the helper)``.
        """
        aliases = self._category_aliases(tree)
        forwarders: Dict[str, Tuple[int, Optional[str]]] = {}
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = [a.arg for a in node.args.args]
            for call in ast.walk(node):
                if not (isinstance(call, ast.Call)
                        and _call_name(call.func) == "run_op"
                        and call.args
                        and isinstance(call.args[0], ast.Name)
                        and call.args[0].id in params):
                    continue
                forwarders[node.name] = (
                    params.index(call.args[0].id),
                    self._explicit_category(call, aliases))
        return forwarders

    @staticmethod
    def _match_registry(registry, stem: str, open_prefix: bool):
        """Resolve a call-site stem against the registry, or None."""
        if not open_prefix and stem in registry:
            return stem, registry[stem]
        for key, category in registry.items():
            if not key.endswith("*"):
                continue
            prefix = key[:-1]
            if stem.startswith(prefix) or (open_prefix
                                           and prefix.startswith(stem)):
                return key, category
        return None

    @staticmethod
    def _category_aliases(tree: ast.Module) -> Dict[str, str]:
        """Module-level ``_MM = OpCategory.MATMUL``-style aliases."""
        aliases: Dict[str, str] = {}
        for node in tree.body:
            if (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Attribute)
                    and isinstance(node.value.value, ast.Name)
                    and node.value.value.id == "OpCategory"):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases[target.id] = node.value.attr
        return aliases

    @staticmethod
    def _explicit_category(node: ast.Call,
                           aliases: Dict[str, str]) -> Optional[str]:
        expr: Optional[ast.expr] = None
        if len(node.args) >= 2:
            expr = node.args[1]
        else:
            for keyword in node.keywords:
                if keyword.arg == "category":
                    expr = keyword.value
        if expr is None:
            return None
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "OpCategory"):
            return expr.attr
        if isinstance(expr, ast.Name):
            return aliases.get(expr.id)
        return None

    def finalize(self, ctx) -> None:
        from repro.core.taxonomy import OP_CATEGORIES, OpCategory
        state = self._state(ctx)
        anchor = state["anchor"]
        if anchor is None:
            # the registry module was not part of this scan (e.g. a
            # fixture tree); only call-site-direction checks apply
            return
        relpath, line = anchor
        used: Set[str] = state["used_keys"]  # type: ignore[assignment]
        for key in sorted(OP_CATEGORIES):
            if key not in used:
                ctx.report(
                    self, relpath, line, 0,
                    f"OP_CATEGORIES entry {key!r} matches no run_op call "
                    f"site; delete it or name the op that should use it "
                    f"(stale registry entries hide real drift)")
        covered = set(OP_CATEGORIES.values())
        for category in OpCategory:
            if category not in covered:
                ctx.report(
                    self, relpath, line, 0,
                    f"taxonomy category OpCategory.{category.name} has no "
                    f"registered op; the Fig. 3a split would render an "
                    f"empty bucket")


# ---------------------------------------------------------------------------
# RL003 — workloads must enter their declared phases
# ---------------------------------------------------------------------------

_REQUIRED_PHASES: Tuple[str, ...] = ("neural", "symbolic")


@register_check
class PhaseCoverage(LintCheck):
    check_id = "RL003"
    name = "phase-coverage"
    description = ("every registered workload's run() must enter both "
                   "neural and symbolic phase contexts")
    severity = SEVERITY_ERROR

    def visit_module(self, module, ctx) -> None:
        if module.zone(ctx.config.zones) != "workloads":
            return
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(isinstance(dec, ast.Call)
                       and _call_name(dec.func) == "register"
                       for dec in node.decorator_list):
                continue
            methods = {
                item.name: item for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))}
            run_def = methods.get("run")
            if run_def is None:
                continue  # inherited run(): not statically checkable here
            entered = self._entered_phases(run_def)
            # one hop: phases entered inside same-class helpers that
            # run() calls as ``self._helper(...)``
            for helper in self._self_calls(run_def):
                if helper in methods and helper != "run":
                    entered |= self._entered_phases(methods[helper])
            missing = [p for p in _REQUIRED_PHASES if p not in entered]
            if missing:
                ctx.report(
                    self, module.relpath, run_def.lineno,
                    run_def.col_offset,
                    f"workload {node.name}.run() never enters "
                    f"phase({'/'.join(repr(m) for m in missing)}); the "
                    f"Fig. 2a neural/symbolic latency split cannot "
                    f"attribute its events")

    @staticmethod
    def _self_calls(run_def: ast.AST) -> Set[str]:
        """Names of methods ``run()`` invokes on ``self``."""
        called: Set[str] = set()
        for node in ast.walk(run_def):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"):
                called.add(node.func.attr)
        return called

    @staticmethod
    def _entered_phases(run_def: ast.AST) -> Set[str]:
        entered: Set[str] = set()
        for node in ast.walk(run_def):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                call = item.context_expr
                if (isinstance(call, ast.Call)
                        and _call_name(call.func) == "phase"
                        and call.args
                        and isinstance(call.args[0], ast.Constant)
                        and isinstance(call.args[0].value, str)):
                    entered.add(call.args[0].value)
        return entered


# ---------------------------------------------------------------------------
# RL004 — determinism of measurement paths
# ---------------------------------------------------------------------------

_LEGACY_RANDOM: Set[str] = {
    "seed", "rand", "randn", "randint", "random_integers", "random",
    "random_sample", "ranf", "sample", "choice", "bytes", "shuffle",
    "permutation", "uniform", "normal", "standard_normal", "binomial",
    "poisson", "beta", "gamma", "exponential", "get_state", "set_state",
    "RandomState",
}

#: stdlib ``random`` module-level functions (the hidden global
#: ``random.Random`` instance); ``random.Random(seed)`` objects are fine
_GLOBAL_STDLIB_RANDOM: Set[str] = {
    "seed", "random", "uniform", "randint", "randrange", "choice",
    "choices", "shuffle", "sample", "betavariate", "expovariate",
    "gauss", "normalvariate", "getrandbits", "triangular",
    "lognormvariate", "vonmisesvariate", "paretovariate",
    "weibullvariate", "getstate", "setstate", "randbytes",
}


@register_check
class Determinism(LintCheck):
    check_id = "RL004"
    name = "determinism"
    description = ("measurement paths must use seeded Generators and "
                   "monotonic clocks")
    severity = SEVERITY_WARNING

    def visit_module(self, module, ctx) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolve_call("numpy", node.func)
            if dotted is not None:
                parts = dotted.split(".")
                if (len(parts) == 2 and parts[0] == "random"
                        and parts[1] in _LEGACY_RANDOM):
                    ctx.report(
                        self, module.relpath, node.lineno,
                        node.col_offset,
                        f"legacy global RNG np.{dotted} makes runs "
                        f"irreproducible across processes; thread a "
                        f"np.random.default_rng(seed) Generator instead")
                    continue
            stdlib = module.resolve_call("random", node.func)
            if stdlib is not None and stdlib in _GLOBAL_STDLIB_RANDOM:
                ctx.report(
                    self, module.relpath, node.lineno, node.col_offset,
                    f"module-level random.{stdlib}() draws from the "
                    f"hidden global RNG; fuzzing and measurement paths "
                    f"must thread a seeded random.Random or "
                    f"np.random.default_rng(seed) instead")
                continue
            clock = module.resolve_call("time", node.func)
            if clock == "time":
                ctx.report(
                    self, module.relpath, node.lineno, node.col_offset,
                    "time.time() is not monotonic and skews measured "
                    "wall times; use time.perf_counter() in measurement "
                    "paths")


# ---------------------------------------------------------------------------
# RL005 — thread-local context stacks stay behind their managers
# ---------------------------------------------------------------------------

_PRIVATE_CONTEXT_NAMES: Set[str] = {"_ctx_stack", "_fault_stack",
                                    "_observer_stack",
                                    "_span_stack", "_collector_stack",
                                    "_runtime_stack", "_worker_stack",
                                    "_trace_stack"}
#: modules that legitimately own a thread-local stack (exempt)
_CONTEXT_MODULES: Tuple[str, ...] = ("tensor/context.py",
                                     "obs/spans.py", "obs/metrics.py",
                                     "obs/tracectx.py", "serve/pool.py")
#: ``from <module ending here> import _private`` is also a violation
_PRIVATE_IMPORT_SOURCES: Tuple[str, ...] = ("tensor.context",
                                            "obs.spans", "obs.metrics",
                                            "obs.tracectx", "serve.pool")
_PHASE_ATTRS: Set[str] = {"current_phase", "current_stage"}
_HOOK_FUNCS: Set[str] = {"push_fault_hook", "pop_fault_hook",
                         "push_op_observer", "pop_op_observer",
                         "push_span", "pop_span",
                         "install_collector", "uninstall_collector",
                         "push_runtime", "pop_runtime",
                         "push_worker", "pop_worker",
                         "push_trace_context", "pop_trace_context"}


class _ContextSafetyVisitor(ast.NodeVisitor):
    """Tracks whether we are inside an approved enter/exit scope."""

    def __init__(self, check: "ContextSafety", module, ctx):
        self.check = check
        self.module = module
        self.ctx = ctx
        self._approved_depth = 0

    # -- scope tracking -------------------------------------------------------
    def _is_approved(self, node: ast.AST) -> bool:
        if node.name in ("__enter__", "__exit__"):  # type: ignore[attr-defined]
            return True
        for dec in node.decorator_list:  # type: ignore[attr-defined]
            name = _call_name(dec) if isinstance(dec, ast.Call) else (
                dec.attr if isinstance(dec, ast.Attribute)
                else dec.id if isinstance(dec, ast.Name) else None)
            if name in ("contextmanager", "asynccontextmanager"):
                return True
        return False

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        approved = self._is_approved(node)
        self._approved_depth += approved
        self.generic_visit(node)
        self._approved_depth -= approved

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- violations -----------------------------------------------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.module.endswith(_PRIVATE_IMPORT_SOURCES):
            for alias in node.names:
                if (alias.name in _PRIVATE_CONTEXT_NAMES
                        or alias.name == "_state"):
                    self.ctx.report(
                        self.check, self.module.relpath, node.lineno,
                        node.col_offset,
                        f"importing private context internal "
                        f"{alias.name!r}; use the ProfileContext / "
                        f"phase() / stage() / span() / SpanCollector / "
                        f"scoped_runtime / fault-hook context managers "
                        f"instead")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node.func)
        if name in _PRIVATE_CONTEXT_NAMES:
            self.ctx.report(
                self.check, self.module.relpath, node.lineno,
                node.col_offset,
                f"direct access to the thread-local stack via {name}(); "
                f"only tensor/context.py may touch it")
        elif name in _HOOK_FUNCS and not self._approved_depth:
            self.ctx.report(
                self.check, self.module.relpath, node.lineno,
                node.col_offset,
                f"{name}() outside an __enter__/__exit__ pair or "
                f"@contextmanager; an unbalanced stack poisons every "
                f"later dispatch/span/observation — wrap it in a "
                f"context manager")
        self.generic_visit(node)

    def _check_targets(self, targets) -> None:
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and target.attr in _PHASE_ATTRS):
                self.ctx.report(
                    self.check, self.module.relpath, target.lineno,
                    target.col_offset,
                    f"direct assignment to {target.attr}; phase/stage "
                    f"labels must be scoped with T.phase()/T.stage() so "
                    f"they restore on exit")

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_targets(node.targets)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_targets([node.target])
        self.generic_visit(node)


@register_check
class ContextSafety(LintCheck):
    check_id = "RL005"
    name = "context-safety"
    description = ("profile/fault-hook/span/metrics stacks are mutated "
                   "only through the approved context managers")
    severity = SEVERITY_ERROR

    def visit_module(self, module, ctx) -> None:
        if module.relpath.endswith(_CONTEXT_MODULES):
            return
        _ContextSafetyVisitor(self, module, ctx).visit(module.tree)
