"""RL100-series: whole-program concurrency soundness checks.

RL001–RL005 guard the instrumentation one module at a time; this
family guards the *threading discipline* of the whole tree.  All five
checks share one :class:`~repro.lint.program.Program` — module graph,
cross-module symbol table, call graph, thread-entrypoint discovery,
lock-context model, and a taint fixpoint separating thread-shared
values from thread-private ones — built once per lint run in
``finalize`` and cached on the lint context.

======  ======================================================
RL101   unsynchronized shared mutable state (thread + main,
        no common lock)
RL102   lock-order cycles across the acquisition graph
RL103   mutable object escapes into a thread without a
        defensive copy
RL104   serve request-path types must stay picklable-by-
        construction (process-boundary readiness)
RL105   blocking call (workload execution, ``time.sleep``,
        unbounded ``queue.get``) while holding a lock
======  ======================================================
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import LintContext, ModuleSource
from repro.lint.findings import SEVERITY_ERROR, SEVERITY_WARNING
from repro.lint.program import (CLEAN, SHARED, _BLOCKING_SUFFIXES,
                                MutationSite, Program, TypeRef,
                                build_program)
from repro.lint.registry import LintCheck, register_check

_STATE_MODULES = "RL100.modules"
_STATE_PROGRAM = "RL100.program"

#: modules whose classes cross (or will cross) a process boundary —
#: the serve request path that ROADMAP item 2 turns into IPC
_BOUNDARY_MODULES = ("serve/request.py",)

#: external types that cannot cross a pickle boundary
_UNPICKLABLE = (
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Event", "threading.Semaphore", "threading.Thread",
    "threading.local", "queue.Queue", "queue.PriorityQueue",
    "queue.LifoQueue", "typing.Callable", "typing.Iterator",
    "typing.Generator", "typing.IO", "typing.TextIO", "typing.BinaryIO",
    "collections.abc.Callable", "collections.abc.Iterator",
    "collections.abc.Generator", "io.IOBase",
)


class _ProgramCheck(LintCheck):
    """Base: collect modules during visits, share one built Program."""

    def visit_module(self, module: ModuleSource, ctx: LintContext) -> None:
        mods: Dict[str, ModuleSource] = ctx.state.setdefault(
            _STATE_MODULES, {})  # type: ignore[assignment]
        mods[module.relpath] = module

    def program(self, ctx: LintContext) -> Program:
        cached = ctx.state.get(_STATE_PROGRAM)
        if isinstance(cached, Program):
            return cached
        mods: Dict[str, ModuleSource] = ctx.state.get(
            _STATE_MODULES, {})  # type: ignore[assignment]
        ordered = [mods[key] for key in sorted(mods)]
        program = build_program(ordered, ctx.config.root.resolve())
        ctx.state[_STATE_PROGRAM] = program
        return program


def _short(qname: str) -> str:
    return qname.rsplit(".", 1)[-1]


def _key_display(program: Program, key: Tuple) -> str:
    if key[0] == "attr":
        return f"{_short(key[1])}.{key[2]}"
    if key[0] == "name":
        return f"{program.fn_display(key[1])}'s local {key[2]!r}"
    return f"module global {key[2]!r}"


@register_check
class SharedStateCheck(_ProgramCheck):
    check_id = "RL101"
    name = "unsynchronized-shared-state"
    description = ("mutable state written on a worker thread without a "
                   "lock while the main thread also touches it")
    severity = SEVERITY_ERROR
    example = (
        "class Stats:\n"
        "    def record(self):        # called from worker threads\n"
        "        self.count += 1      # RL101: no lock, main thread\n"
        "                             # reads self.count in summary()\n")

    def finalize(self, ctx: LintContext) -> None:
        program = self.program(ctx)
        muts: Dict[Tuple, List[MutationSite]] = {}
        for site in program.mutations:
            muts.setdefault(site.key, []).append(site)
        loads: Dict[Tuple, List] = {}
        for load in program.loads:
            loads.setdefault(load.key, []).append(load)

        for key in sorted(muts, key=repr):
            sites = muts[key]
            bad = [s for s in sites
                   if s.fn in program.thread_side and not s.locks
                   and not s.in_ctor and self._shared(program, s)]
            if not bad:
                continue
            touched = any(
                s.fn in program.main_side and not s.in_ctor
                for s in sites)
            touched = touched or any(
                l.fn in program.main_side for l in loads.get(key, ()))
            if key[0] == "name" and key[1] in program.main_side:
                touched = True
            if not touched:
                continue                 # thread-confined state
            first = min(bad, key=lambda s: (s.relpath, s.line))
            others = sorted({(s.relpath, s.line) for s in bad}
                            - {(first.relpath, first.line)})
            extra = "" if not others else (
                "; also at " + ", ".join(f"{r}:{n}" for r, n in others))
            ctx.report(
                self, first.relpath, first.line, 0,
                f"{_key_display(program, key)} is mutated on a worker "
                f"thread in {program.fn_display(first.fn)} with no lock "
                f"held, but the main thread also touches it — guard "
                f"both sides with a common lock{extra}")

    @staticmethod
    def _shared(program: Program, site: MutationSite) -> bool:
        if site.recv is None:
            return True
        return program.taint(site.recv, site.fn) == SHARED


@register_check
class LockOrderCheck(_ProgramCheck):
    check_id = "RL102"
    name = "lock-order-cycle"
    description = ("two locks acquired in opposite orders on different "
                   "code paths (deadlock potential)")
    severity = SEVERITY_ERROR
    example = (
        "def a(self):\n"
        "    with self._x:\n"
        "        with self._y: ...    # x -> y\n"
        "def b(self):\n"
        "    with self._y:\n"
        "        self.a()             # RL102: y -> x closes a cycle\n")

    def finalize(self, ctx: LintContext) -> None:
        program = self.program(ctx)
        edges: Dict[Tuple, Dict[Tuple, Tuple[str, int]]] = {}

        def add(outer: Tuple, inner: Tuple, relpath: str,
                line: int) -> None:
            if outer == inner:
                return
            edges.setdefault(outer, {}).setdefault(inner,
                                                   (relpath, line))

        for acq in program.acquisitions:
            for held in acq.held:
                add(held, acq.lock, acq.relpath, acq.line)
        for fn in program.functions.values():
            for call in fn.calls:
                if call.callee is None or not call.locks:
                    continue
                callee = program.functions.get(call.callee)
                if callee is None:
                    continue
                for inner in callee.locks_acquired:
                    for held in call.locks:
                        add(held, inner, fn.relpath, call.line)

        reported: Set[Tuple[Tuple, ...]] = set()
        for start in sorted(edges, key=repr):
            cycle = self._find_cycle(edges, start)
            if cycle is None:
                continue
            canon = self._canonical(cycle)
            if canon in reported:
                continue
            reported.add(canon)
            relpath, line = edges[cycle[0]][cycle[1]]
            chain = " -> ".join(self._lock_display(program, lock)
                                for lock in cycle + (cycle[0],))
            ctx.report(
                self, relpath, line, 0,
                f"lock-order cycle: {chain} — these locks are taken "
                f"in conflicting orders on different paths and can "
                f"deadlock")

    @staticmethod
    def _find_cycle(edges, start) -> Optional[Tuple]:
        stack = [(start, (start,))]
        seen: Set[Tuple] = set()
        while stack:
            node, path = stack.pop()
            for nxt in sorted(edges.get(node, ()), key=repr):
                if nxt == start:
                    return path
                if nxt in seen or nxt in path:
                    continue
                seen.add(nxt)
                stack.append((nxt, path + (nxt,)))
        return None

    @staticmethod
    def _canonical(cycle: Tuple) -> Tuple:
        names = [repr(lock) for lock in cycle]
        pivot = names.index(min(names))
        return cycle[pivot:] + cycle[:pivot]

    @staticmethod
    def _lock_display(program: Program, lock: Tuple) -> str:
        if lock[0] == "attr":
            return f"{_short(lock[1])}.{lock[2]}"
        if lock[0] == "local":
            return f"{program.fn_display(lock[1])}:{lock[2]}"
        return f"{lock[1]}:{lock[2]}"


@register_check
class ThreadEscapeCheck(_ProgramCheck):
    check_id = "RL103"
    name = "thread-escape-without-copy"
    description = ("a mutable, lock-free object crosses a thread-spawn "
                   "boundary while the caller keeps its reference")
    severity = SEVERITY_ERROR
    example = (
        "plan = FaultPlan(...)\n"
        "for w in workers:\n"
        "    Thread(target=w.run, args=(plan,))   # RL103: every\n"
        "        # thread mutates the same plan; pass deepcopy(plan)\n")

    def finalize(self, ctx: LintContext) -> None:
        program = self.program(ctx)
        for arg in sorted(program.spawn_args,
                          key=lambda a: (a.relpath, a.line, repr(a.ref))):
            if arg.loop_var:
                continue                 # partitioned per thread
            if arg.type is None or arg.type.container:
                continue
            if arg.type.qname not in program.classes:
                continue
            if not program.is_thread_unsafe(arg.type.qname):
                continue                 # stateless, or locks internally
            taint = program.taint(arg.ref, arg.fn)
            if taint == CLEAN:
                continue                 # defensively copied
            if not arg.in_loop and taint != SHARED:
                continue                 # fresh object handed off once
            ctx.report(
                self, arg.relpath, arg.line, 0,
                f"{_short(arg.type.qname)} instance escapes into "
                f"thread target {arg.target} while other threads (or "
                f"the spawner) retain it, and "
                f"{_short(arg.type.qname)} mutates its own state "
                f"without locks — pass a copy.deepcopy() per thread "
                f"or make it lock-protected")


@register_check
class PickleBoundaryCheck(_ProgramCheck):
    check_id = "RL104"
    name = "process-boundary-readiness"
    description = ("serve request-path types must stay picklable: no "
                   "locks, threads, queues, callables, generators or "
                   "file handles in their field closure")
    severity = SEVERITY_ERROR
    example = (
        "@dataclass\n"
        "class Response:\n"
        "    done: threading.Event    # RL104: cannot cross the\n"
        "                             # process boundary of a fleet\n")

    def finalize(self, ctx: LintContext) -> None:
        program = self.program(ctx)
        roots = [cls for cls in program.classes.values()
                 if cls.relpath in _BOUNDARY_MODULES]
        seen: Set[str] = set()
        for root in sorted(roots, key=lambda c: c.qname):
            self._walk(ctx, program, root.qname, (root.name,), seen)

    def _walk(self, ctx: LintContext, program: Program, qname: str,
              path: Tuple[str, ...], seen: Set[str]) -> None:
        if qname in seen:
            return
        seen.add(qname)
        cls = program.classes.get(qname)
        if cls is None:
            return
        where = " -> ".join(path)
        if cls.lock_attrs:
            locks = ", ".join(sorted(cls.lock_attrs))
            ctx.report(
                self, cls.relpath, cls.line, 0,
                f"{where}: {cls.name} holds lock attribute(s) "
                f"{locks} and cannot cross a process boundary")
        mod = program.modules.get(cls.module)
        for attr, ann in cls.fields:
            for dotted in self._ann_names(ann):
                resolved = self._absolute(program, mod, dotted)
                bad = self._unpicklable(resolved)
                if bad:
                    ctx.report(
                        self, cls.relpath, cls.line, 0,
                        f"{where}.{attr}: field type {dotted} "
                        f"({bad}) is not picklable-by-construction")
            got = cls.attr_types.get(attr)
            if got is not None and got.qname in program.classes:
                self._walk(ctx, program, got.qname,
                           path + (attr, _short(got.qname)), seen)

    @staticmethod
    def _ann_names(ann: ast.expr) -> List[str]:
        names: List[str] = []
        todo: List[ast.expr] = [ann]
        while todo:
            node = todo.pop()
            if isinstance(node, ast.Constant) \
                    and isinstance(node.value, str):
                try:
                    todo.append(ast.parse(node.value,
                                          mode="eval").body)
                except SyntaxError:
                    continue
                continue
            for sub in ast.walk(node):
                if isinstance(sub, (ast.Name, ast.Attribute)):
                    parts: List[str] = []
                    cur: ast.expr = sub
                    while isinstance(cur, ast.Attribute):
                        parts.append(cur.attr)
                        cur = cur.value
                    if isinstance(cur, ast.Name):
                        parts.append(cur.id)
                        names.append(".".join(reversed(parts)))
        return names

    @staticmethod
    def _absolute(program: Program, mod, dotted: str) -> str:
        if mod is None:
            return dotted
        head, _, rest = dotted.partition(".")
        target = mod.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    _UNPICKLABLE_TAILS = frozenset((
        "Lock", "RLock", "Condition", "Event", "Semaphore", "Thread",
        "Callable", "Iterator", "Generator", "IO", "TextIO",
        "BinaryIO", "Queue", "PriorityQueue", "LifoQueue"))
    _STDLIB_HEADS = frozenset((
        "threading", "queue", "typing", "collections", "io",
        "concurrent", "multiprocessing"))

    @classmethod
    def _unpicklable(cls, dotted: str) -> Optional[str]:
        if dotted in _UNPICKLABLE:
            return dotted
        head = dotted.split(".", 1)[0]
        tail = dotted.rsplit(".", 1)[-1]
        if tail in cls._UNPICKLABLE_TAILS and (
                head in cls._STDLIB_HEADS or head == tail):
            return tail
        return None


@register_check
class BlockingUnderLockCheck(_ProgramCheck):
    check_id = "RL105"
    name = "blocking-while-locked"
    description = ("a blocking operation (workload execution, sleep, "
                   "unbounded queue.get/join/wait) runs while a lock "
                   "is held")
    severity = SEVERITY_WARNING
    example = (
        "with self._lock:\n"
        "    batch = self._queue.get()   # RL105: every other thread\n"
        "                                # now waits on this consumer\n")

    def finalize(self, ctx: LintContext) -> None:
        program = self.program(ctx)
        for site in sorted(program.blocking,
                           key=lambda s: (s.relpath, s.line)):
            locks = ", ".join(sorted(
                LockOrderCheck._lock_display(program, lock)
                for lock in site.locks))
            ctx.report(
                self, site.relpath, site.line, 0,
                f"blocking call {site.what} while holding {locks} — "
                f"move the wait outside the critical section or use "
                f"a timeout")
        for fn in program.functions.values():
            for call in fn.calls:
                if call.callee is None or not call.locks:
                    continue
                if not call.callee.rsplit(".", 1)[-1].endswith(
                        tuple(_BLOCKING_SUFFIXES)):
                    continue
                locks = ", ".join(sorted(
                    LockOrderCheck._lock_display(program, lock)
                    for lock in call.locks))
                ctx.report(
                    self, fn.relpath, call.line, 0,
                    f"whole-workload execution "
                    f"{program.fn_display(call.callee)}() while "
                    f"holding {locks} — execution can take seconds "
                    f"and serializes every contender")
