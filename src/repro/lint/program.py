"""Whole-program model backing the RL100-series concurrency checks.

Where ``repro.lint.checks`` inspects one module at a time, this layer
builds a *program*: every scanned module indexed by dotted name, a
cross-module symbol table (imports, aliases, transitive re-exports), a
call graph (``self.method``, annotation-typed receivers, module
aliases, callable-valued parameters and attributes), thread-entrypoint
discovery (``threading.Thread(target=...)``, ``Executor.submit``), a
lock-context model (which locks are held at each statement), and a
taint fixpoint classifying every value reaching a thread as *shared*,
*confined* (thread-private: loop-partitioned spawn args, fresh
constructions, ownership-transferring ``pop``/queue ``get``) or
*clean* (``copy.deepcopy`` sanitized).

Everything is stdlib ``ast``; no imports of the scanned code.  The
model is deliberately conservative in both directions the checks
need: a value is only *shared* when a concrete chain of assignments,
calls, spawns or escapes says so (precision — a lock-free mutation of
thread-private state is not a finding), and lock identities are
normalized (``threading.Condition(self._lock)`` aliases its inner
lock) so guarded code is recognized as guarded (soundness).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Dict, FrozenSet, Iterable, List, Optional, Sequence,
                    Set, Tuple)

from repro.lint.engine import ModuleSource

# taint lattice: join = max
CLEAN, CONFINED, SHARED = 0, 1, 2

#: dotted stdlib constructors that produce locks
_LOCK_CTORS = {"threading.Lock", "threading.RLock"}
_COND_CTOR = "threading.Condition"
#: stdlib names whose construction produces a thread handle / executor
_THREAD_CTOR = "threading.Thread"
_EXECUTOR_CTORS = {"concurrent.futures.ThreadPoolExecutor",
                   "futures.ThreadPoolExecutor"}
#: sanitizers: calling these on a value yields a private copy
_SANITIZERS = {"copy.deepcopy", "copy.copy"}
#: method names that mutate their receiver in place
_MUTATORS = {"append", "add", "update", "setdefault", "insert", "extend",
             "pop", "popitem", "remove", "discard", "clear", "appendleft",
             "sort", "reverse"}
#: method names that transfer ownership of the returned element
_EXTRACTORS = {"pop", "popitem", "get_nowait"}
#: blocking method names when called without a timeout argument
_BLOCKING_METHODS = {"get", "join", "wait", "acquire", "result"}
#: resolved in-tree callee suffixes that execute whole workloads
_BLOCKING_SUFFIXES = ("run_workload", "execute_batch", "run_roster",
                      "profile_workload")
#: container generics whose element type we propagate
_CONTAINERS = {"Dict", "dict", "List", "list", "Sequence", "Tuple",
               "tuple", "Set", "set", "FrozenSet", "frozenset",
               "Mapping", "MutableMapping", "Iterable", "DefaultDict"}
_UNWRAP = {"Optional", "ClassVar", "Final"}

LockId = Tuple[str, ...]          # ("attr",cls,a) ("global",mod,n) ("local",fn,n)
Ref = Tuple                        # tagged value descriptor, see _Fn._ref


@dataclass
class TypeRef:
    """A resolved in-tree class, possibly reached through a container.

    ``queue`` marks ``queue.Queue[...]``-typed channels, whose ``get``
    transfers element ownership to the receiving thread.
    """

    qname: str
    container: bool = False
    queue: bool = False


@dataclass
class MutationSite:
    """One write to shared-candidate state."""

    fn: str
    relpath: str
    line: int
    key: Tuple                    # ("attr",cls,a) | ("name",owner_fn,n) | ("global",mod,n)
    recv: Optional[Ref]
    locks: FrozenSet[LockId]
    in_ctor: bool
    kind: str                     # assign / augassign / item / call


@dataclass
class LoadSite:
    fn: str
    relpath: str
    line: int
    key: Tuple


@dataclass
class Acquisition:
    """Taking a lock, with the locks already held at that point."""

    fn: str
    relpath: str
    line: int
    lock: LockId
    held: FrozenSet[LockId]


@dataclass
class BlockingSite:
    fn: str
    relpath: str
    line: int
    locks: FrozenSet[LockId]
    what: str


@dataclass
class SpawnArg:
    """One value crossing a spawn boundary (RL103 raw material)."""

    fn: str
    relpath: str
    line: int
    ref: Ref
    type: Optional[TypeRef]
    loop_var: bool
    in_loop: bool
    target: str                   # display name of the thread target


@dataclass
class CallSite:
    fn: str
    line: int
    callee: Optional[str]         # statically resolved function qname
    callee_ref: Optional[Ref]     # dynamic: param/attr/bound-valued callee
    recv: Optional[Ref]           # method receiver
    args: List[Tuple[Optional[str], Ref, Optional[TypeRef]]]
    locks: FrozenSet[LockId]
    external: Optional[str] = None  # dotted stdlib/third-party name


@dataclass
class SpawnSite:
    fn: str
    line: int
    target: Ref
    args: List[Tuple[Ref, Optional[TypeRef], bool]]  # (ref, type, loop_var)
    in_loop: bool


@dataclass
class FunctionInfo:
    """One function/method (or a module's top-level pseudo-function)."""

    qname: str
    module: str
    relpath: str
    name: str
    line: int
    cls: Optional[str] = None
    parent: Optional[str] = None          # lexically enclosing function
    params: List[str] = field(default_factory=list)
    param_ann: Dict[str, Optional[TypeRef]] = field(default_factory=dict)
    returns: Optional[TypeRef] = None
    returns_fresh: bool = False
    return_refs: List[Ref] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    spawns: List[SpawnSite] = field(default_factory=list)
    locks_acquired: Set[LockId] = field(default_factory=set)
    locals_ref: Dict[str, Ref] = field(default_factory=dict)
    locals_type: Dict[str, TypeRef] = field(default_factory=dict)
    is_entrypoint: bool = False

    @property
    def is_ctor(self) -> bool:
        return self.name in ("__init__", "__post_init__")


@dataclass
class ClassInfo:
    qname: str
    module: str
    relpath: str
    line: int
    name: str
    bases: List[str] = field(default_factory=list)  # resolved in-tree qnames
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fn qname
    attr_types: Dict[str, TypeRef] = field(default_factory=dict)
    fields: List[Tuple[str, ast.expr]] = field(default_factory=list)
    lock_attrs: Set[str] = field(default_factory=set)
    cond_alias: Dict[str, str] = field(default_factory=dict)
    callable_attrs: Set[str] = field(default_factory=set)


class _ModuleInfo:
    """Per-module symbol table."""

    def __init__(self, dotted: str, src: ModuleSource, is_package: bool):
        self.dotted = dotted
        self.src = src
        self.is_package = is_package
        self.classes: Dict[str, str] = {}      # name -> class qname
        self.functions: Dict[str, str] = {}    # name -> fn qname
        self.imports: Dict[str, str] = {}      # local -> absolute dotted
        self.global_types: Dict[str, TypeRef] = {}
        self.global_locks: Set[str] = set()
        self.global_names: Set[str] = set()    # every module-level binding


def module_dotted_name(root: Path, relpath: str) -> str:
    """Dotted module name for ``relpath`` under the scan ``root``.

    When the root directory is itself a package (has ``__init__.py``)
    its name prefixes every module — scanning ``src/repro`` names
    ``serve/pool.py`` as ``repro.serve.pool`` so absolute imports in
    the tree resolve against the index.
    """
    parts = relpath.split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if root.is_dir() and (root / "__init__.py").exists():
        parts = [root.name] + parts
    return ".".join(parts) if parts else root.name


class Program:
    """The assembled whole-program model (build via :func:`build_program`)."""

    def __init__(self) -> None:
        self.modules: Dict[str, _ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.mutations: List[MutationSite] = []
        self.loads: List[LoadSite] = []
        self.acquisitions: List[Acquisition] = []
        self.blocking: List[BlockingSite] = []
        self.spawn_args: List[SpawnArg] = []
        self.thread_side: Set[str] = set()
        self.main_side: Set[str] = set()
        self.escaped_classes: Set[str] = set()
        self._self_taint: Dict[str, int] = {}
        self._param_taint: Dict[Tuple[str, str], int] = {}
        self._callable_sets: Dict[Tuple[str, str], Set[Ref]] = {}
        self._attr_callables: Dict[Tuple[str, str], Set[Ref]] = {}
        self._attr_flows: List[Tuple[str, str, str, str]] = []
        self._unsafe_cache: Dict[str, bool] = {}

    # -- symbol resolution ---------------------------------------------------
    def resolve(self, target: str, _depth: int = 0):
        """Resolve an absolute dotted path to an in-tree symbol.

        Returns ``("module"|"class"|"func"|"global", qname)`` or
        ``("external", target)`` for paths leaving the scanned tree.
        Re-export chains (``from repro.serve.pool import Worker``
        surfaced by ``repro.serve``) resolve transitively.
        """
        if _depth > 12:
            return ("external", target)
        if target in self.modules:
            return ("module", target)
        head, _, last = target.rpartition(".")
        if head in self.modules:
            mod = self.modules[head]
            if last in mod.classes:
                return ("class", mod.classes[last])
            if last in mod.functions:
                return ("func", mod.functions[last])
            if last in mod.imports:
                return self.resolve(mod.imports[last], _depth + 1)
            if last in mod.global_types or last in mod.global_locks:
                return ("global", target)
            return ("external", target)
        if head:
            sym = self.resolve(head, _depth + 1)
            if sym[0] == "class":
                meth = self.lookup_method(sym[1], last)
                if meth:
                    return ("func", meth)
        root = target.split(".", 1)[0]
        if root in self.modules:  # dotted path under a known package
            return ("external", target)
        return ("external", target)

    def resolve_name(self, module: str, name: str):
        """Resolve a bare name in ``module``'s global scope."""
        mod = self.modules.get(module)
        if mod is None:
            return None
        if name in mod.classes:
            return ("class", mod.classes[name])
        if name in mod.functions:
            return ("func", mod.functions[name])
        if name in mod.imports:
            return self.resolve(mod.imports[name])
        if name in mod.global_types or name in mod.global_locks \
                or name in mod.global_names:
            return ("global", f"{module}.{name}")
        return None

    def lookup_method(self, class_qname: str, name: str,
                      _depth: int = 0) -> Optional[str]:
        """Find ``name`` on the class or (in-tree) base classes."""
        if _depth > 8:
            return None
        cls = self.classes.get(class_qname)
        if cls is None:
            return None
        if name in cls.methods:
            return cls.methods[name]
        for base in cls.bases:
            found = self.lookup_method(base, name, _depth + 1)
            if found:
                return found
        return None

    def attr_type(self, class_qname: str, attr: str,
                  _depth: int = 0) -> Optional[TypeRef]:
        if _depth > 8:
            return None
        cls = self.classes.get(class_qname)
        if cls is None:
            return None
        if attr in cls.attr_types:
            return cls.attr_types[attr]
        for base in cls.bases:
            found = self.attr_type(base, attr, _depth + 1)
            if found:
                return found
        return None

    def lock_attr(self, class_qname: str, attr: str,
                  _depth: int = 0) -> Optional[str]:
        """Normalized lock attribute name (through condition aliases)."""
        if _depth > 8:
            return None
        cls = self.classes.get(class_qname)
        if cls is None:
            return None
        if attr in cls.cond_alias:
            return self.lock_attr(class_qname, cls.cond_alias[attr],
                                  _depth + 1) or cls.cond_alias[attr]
        if attr in cls.lock_attrs:
            return attr
        for base in cls.bases:
            found = self.lock_attr(base, attr, _depth + 1)
            if found:
                return found
        return None

    # -- taint evaluation ----------------------------------------------------
    def taint(self, ref: Ref, fn: str, _depth: int = 0) -> int:
        """Taint of a value descriptor evaluated in ``fn``'s context."""
        if _depth > 12 or not isinstance(ref, tuple) or not ref:
            return SHARED
        tag = ref[0]
        if tag == "self":
            return self._self_taint.get(fn, CONFINED)
        if tag == "param":
            return self._param_taint.get((fn, ref[1]), CONFINED)
        if tag == "global":
            return SHARED
        if tag == "fresh":
            return CONFINED
        if tag == "clean":
            return CLEAN
        if tag == "extracted":
            return CONFINED
        if tag == "opaque":
            return CONFINED
        if tag == "call":
            callee = ref[1]
            target = self.functions.get(callee) if callee else None
            if target is None:
                return SHARED
            if target.returns_fresh:
                return CONFINED
            if not target.return_refs:
                return CONFINED           # returns None (or never)
            # interprocedural: the call result is as tainted as what
            # the callee actually returns, evaluated in its context
            return max(self.taint(r, callee, _depth + 1)
                       for r in target.return_refs)
        if tag in ("attr", "elem"):
            return self.taint(ref[1], fn, _depth + 1)
        if tag == "bound":
            return self.taint(ref[1], ref[3], _depth + 1)
        if tag in ("func", "cls", "mod", "ext", "lockval"):
            return CONFINED
        if tag == "either":
            return max(self.taint(ref[1], fn, _depth + 1),
                       self.taint(ref[2], fn, _depth + 1))
        if tag == "free":
            owner, inner = self._free_binding(fn, ref[1])
            if owner is None:
                return SHARED
            base = self.taint(inner, owner, _depth + 1)
            if inner[0] in ("fresh", "extracted", "call") \
                    and fn in self.thread_side:
                # a thread closing over its spawner's local shares it
                # with the spawner (and with sibling threads)
                return SHARED
            return base
        return SHARED

    def _free_binding(self, fn: str,
                      name: str) -> Tuple[Optional[str], Ref]:
        """Walk lexical parents to the binding a free variable sees."""
        info = self.functions.get(fn)
        seen = 0
        while info is not None and info.parent is not None and seen < 10:
            info = self.functions.get(info.parent)
            seen += 1
            if info is None:
                break
            if name in info.params:
                return info.qname, ("param", name)
            if name in info.locals_ref:
                return info.qname, info.locals_ref[name]
        return None, ("opaque",)

    # -- derived classifications ---------------------------------------------
    def is_thread_unsafe(self, class_qname: str) -> bool:
        """Stateful and lock-free: has a non-ctor method mutating its
        own attributes with no lock held (the RL103 escape hazard)."""
        cached = self._unsafe_cache.get(class_qname)
        if cached is not None:
            return cached
        result = False
        for site in self.mutations:
            if site.key[0] != "attr" or site.key[1] != class_qname:
                continue
            if site.in_ctor or site.locks:
                continue
            if site.recv is not None and site.recv[0] == "self":
                result = True
                break
        self._unsafe_cache[class_qname] = result
        return result

    def fn_display(self, qname: str) -> str:
        info = self.functions.get(qname)
        if info is None:
            return qname
        return f"{info.cls.rsplit('.', 1)[-1]}.{info.name}" \
            if info.cls else info.name


def build_program(modules: Sequence[ModuleSource], root: Path) -> Program:
    """Assemble the whole-program model from parsed modules."""
    program = Program()
    infos: List[Tuple[_ModuleInfo, ast.Module]] = []
    for src in modules:
        dotted = module_dotted_name(root, src.relpath)
        is_pkg = src.relpath.endswith("__init__.py")
        mod = _ModuleInfo(dotted, src, is_pkg)
        program.modules[dotted] = mod
        infos.append((mod, src.tree))

    for mod, tree in infos:          # pass 1: symbols
        _index_module(program, mod, tree)
    for mod, tree in infos:          # pass 2: class tables need pass 1
        _extract_classes(program, mod, tree)
    for mod, tree in infos:          # pass 3: function signatures
        _declare_functions(program, mod, tree)
    for mod, tree in infos:          # pass 4: function bodies
        _analyze_module(program, mod, tree)

    _fixpoint(program)
    _compute_main_side(program)
    return program


# -- pass 1: module symbol tables --------------------------------------------

def _index_module(program: Program, mod: _ModuleInfo,
                  tree: ast.Module) -> None:
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                mod.imports[bound] = target
        elif isinstance(node, ast.ImportFrom):
            base = _import_base(mod, node)
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                mod.imports[bound] = f"{base}.{alias.name}" if base \
                    else alias.name
        elif isinstance(node, ast.ClassDef):
            mod.classes[node.name] = f"{mod.dotted}.{node.name}"
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mod.functions[node.name] = f"{mod.dotted}.{node.name}"
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        mod.global_names.add(sub.id)


def _import_base(mod: _ModuleInfo, node: ast.ImportFrom) -> str:
    if not node.level:
        return node.module or ""
    parts = mod.dotted.split(".")
    if not mod.is_package:
        parts = parts[:-1]
    parts = parts[:len(parts) - (node.level - 1)] if node.level > 1 else parts
    base = ".".join(parts)
    if node.module:
        base = f"{base}.{node.module}" if base else node.module
    return base


# -- annotation resolution ----------------------------------------------------

def _ann_to_type(program: Program, mod: _ModuleInfo,
                 node: Optional[ast.expr],
                 _depth: int = 0) -> Optional[TypeRef]:
    """Resolve an annotation expression to an in-tree class, unwrapping
    Optional and mapping container generics to their element type."""
    if node is None or _depth > 6:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value.strip(), mode="eval").body
        except SyntaxError:
            return None
        return _ann_to_type(program, mod, node, _depth + 1)
    if isinstance(node, ast.Subscript):
        head = _dotted_of(node.value)
        tail = head.rsplit(".", 1)[-1] if head else ""
        inner = node.slice
        if isinstance(inner, ast.Index):  # py3.8 compat shape
            inner = inner.value  # type: ignore[attr-defined]
        if tail in _UNWRAP or tail == "Union":
            if isinstance(inner, ast.Tuple):
                for elt in inner.elts:
                    got = _ann_to_type(program, mod, elt, _depth + 1)
                    if got:
                        return got
                return None
            return _ann_to_type(program, mod, inner, _depth + 1)
        if tail in _CONTAINERS:
            elts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
            elem = _ann_to_type(program, mod, elts[-1], _depth + 1)
            if elem:
                return TypeRef(elem.qname, container=True)
            return None
        if head:
            ext = _external_of(program, mod, node.value)
            if ext is not None and ext.endswith("Queue"):
                elem = _ann_to_type(program, mod, inner, _depth + 1)
                return TypeRef(elem.qname if elem else "", container=True,
                               queue=True)
        return None
    dotted = _dotted_of(node)
    if not dotted:
        return None
    sym = _resolve_dotted_in_module(program, mod, dotted)
    if sym and sym[0] == "class":
        return TypeRef(sym[1])
    return None


def _resolve_dotted_in_module(program: Program, mod: _ModuleInfo,
                              dotted: str):
    head, _, rest = dotted.partition(".")
    local = program.resolve_name(mod.dotted, head)
    if local is None:
        return None
    if not rest:
        return local
    if local[0] == "module":
        return program.resolve(f"{local[1]}.{rest}")
    if local[0] == "external":
        return ("external", f"{local[1]}.{rest}")
    if local[0] == "class":
        meth = program.lookup_method(local[1], rest)
        return ("func", meth) if meth else None
    return None


def _dotted_of(node: ast.expr) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _external_of(program: Program, mod: _ModuleInfo,
                 func: ast.expr) -> Optional[str]:
    """Dotted external (stdlib) name of a call target, if any."""
    dotted = _dotted_of(func)
    if not dotted:
        return None
    sym = _resolve_dotted_in_module(program, mod, dotted)
    if sym and sym[0] == "external":
        return sym[1]
    return None


# -- pass 2: class tables -----------------------------------------------------

def _extract_classes(program: Program, mod: _ModuleInfo,
                     tree: ast.Module) -> None:
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        qname = mod.classes[node.name]
        cls = ClassInfo(qname=qname, module=mod.dotted,
                        relpath=mod.src.relpath, line=node.lineno,
                        name=node.name)
        for base in node.bases:
            dotted = _dotted_of(base)
            if dotted:
                sym = _resolve_dotted_in_module(program, mod, dotted)
                if sym and sym[0] == "class":
                    cls.bases.append(sym[1])
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[item.name] = f"{qname}.{item.name}"
            elif isinstance(item, ast.AnnAssign) and \
                    isinstance(item.target, ast.Name):
                cls.fields.append((item.target.id, item.annotation))
                got = _ann_to_type(program, mod, item.annotation)
                if got:
                    cls.attr_types[item.target.id] = got
        program.classes[qname] = cls

    # second sweep: __init__-style attribute assignments need the class
    # table of *other* classes only at pass 3; here we only need
    # constructor names and annotations, both local.
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        cls = program.classes[mod.classes[node.name]]
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _scan_attr_assigns(program, mod, cls, item)


def _scan_attr_assigns(program: Program, mod: _ModuleInfo, cls: ClassInfo,
                       fn: ast.AST) -> None:
    """Type ``self.X = ...`` sites: annotations, constructors, locks."""
    ann_params: Dict[str, Optional[TypeRef]] = {}
    args = fn.args  # type: ignore[attr-defined]
    for a in list(args.posonlyargs) + list(args.args) + \
            list(args.kwonlyargs):
        ann_params[a.arg] = _ann_to_type(program, mod, a.annotation)
    for node in ast.walk(fn):  # type: ignore[arg-type]
        target = None
        value = None
        ann = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value, ann = node.target, node.value, node.annotation
        if not (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            continue
        attr = target.attr
        if ann is not None:
            got = _ann_to_type(program, mod, ann)
            if got:
                cls.attr_types.setdefault(attr, got)
        fn_qname = f"{cls.qname}.{fn.name}"  # type: ignore[attr-defined]
        _type_attr_value(program, mod, cls, attr, value, ann_params,
                         fn_qname)


def _type_attr_value(program: Program, mod: _ModuleInfo, cls: ClassInfo,
                     attr: str, value: Optional[ast.expr],
                     ann_params: Dict[str, Optional[TypeRef]],
                     fn_qname: str, _depth: int = 0) -> None:
    if value is None or _depth > 3:
        return
    if isinstance(value, ast.BoolOp):
        for operand in value.values:
            _type_attr_value(program, mod, cls, attr, operand, ann_params,
                             fn_qname, _depth + 1)
        return
    if isinstance(value, ast.Call):
        ext = _external_of(program, mod, value.func)
        if ext in _LOCK_CTORS:
            cls.lock_attrs.add(attr)
            return
        if ext == _COND_CTOR:
            cls.lock_attrs.add(attr)
            if value.args and isinstance(value.args[0], ast.Attribute) \
                    and isinstance(value.args[0].value, ast.Name) \
                    and value.args[0].value.id == "self":
                cls.cond_alias[attr] = value.args[0].attr
            return
        if ext in ("list", "dict", "set", "tuple", "sorted") \
                and value.args and isinstance(value.args[0], ast.Name):
            got = ann_params.get(value.args[0].id)
            if got and got.container:
                cls.attr_types.setdefault(attr, got)
            return
        dotted = _dotted_of(value.func)
        if dotted:
            sym = _resolve_dotted_in_module(program, mod, dotted)
            if sym and sym[0] == "class":
                cls.attr_types.setdefault(attr, TypeRef(sym[1]))
        return
    if isinstance(value, (ast.ListComp, ast.SetComp)) \
            and isinstance(value.elt, ast.Call):
        dotted = _dotted_of(value.elt.func)
        if dotted:
            sym = _resolve_dotted_in_module(program, mod, dotted)
            if sym and sym[0] == "class":
                cls.attr_types.setdefault(
                    attr, TypeRef(sym[1], container=True))
        return
    if isinstance(value, ast.Name) and value.id in ann_params:
        got = ann_params[value.id]
        if got:
            cls.attr_types.setdefault(attr, got)
        # a parameter stored on self may carry a callable: record the
        # flow so dynamic `self.attr(...)` calls resolve in the fixpoint
        cls.callable_attrs.add(attr)
        program._attr_flows.append((cls.qname, attr, fn_qname, value.id))


# -- pass 3: function signatures ----------------------------------------------

def _declare_one(program: Program, mod: _ModuleInfo, node: ast.AST,
                 qname: str, cls: Optional[str],
                 parent: Optional[str]) -> FunctionInfo:
    info = FunctionInfo(qname=qname, module=mod.dotted,
                        relpath=mod.src.relpath,
                        name=node.name,  # type: ignore[attr-defined]
                        line=node.lineno,  # type: ignore[attr-defined]
                        cls=cls, parent=parent)
    args = node.args  # type: ignore[attr-defined]
    every = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    for a in every:
        info.params.append(a.arg)
        info.param_ann[a.arg] = _ann_to_type(program, mod, a.annotation)
    info.returns = _ann_to_type(
        program, mod, node.returns)  # type: ignore[attr-defined]
    program.functions[qname] = info
    return info


def _declare_functions(program: Program, mod: _ModuleInfo,
                       tree: ast.Module) -> None:
    pseudo = FunctionInfo(qname=f"{mod.dotted}.<module>", module=mod.dotted,
                          relpath=mod.src.relpath, name="<module>", line=1)
    program.functions[pseudo.qname] = pseudo
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _declare_one(program, mod, node, f"{mod.dotted}.{node.name}",
                         cls=None, parent=None)
        elif isinstance(node, ast.ClassDef):
            cq = mod.classes[node.name]
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    _declare_one(program, mod, item, f"{cq}.{item.name}",
                                 cls=cq, parent=None)


# -- pass 4: function bodies --------------------------------------------------

def _analyze_module(program: Program, mod: _ModuleInfo,
                    tree: ast.Module) -> None:
    # module-level statements form a pseudo-function: a main-side root
    # whose bindings become the module's typed globals
    pseudo = program.functions[f"{mod.dotted}.<module>"]
    top = [stmt for stmt in tree.body
           if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef, ast.Import,
                                    ast.ImportFrom))]
    _Fn(program, mod, pseudo, top, enclosing_cls=None,
        module_level=True).run()
    for name, tref in pseudo.locals_type.items():
        mod.global_types.setdefault(name, tref)
    mod.global_locks.update(
        lock[2] for lock in pseudo.locks_acquired if lock[0] == "global")
    for name in pseudo.locals_ref:
        if pseudo.locals_ref[name] == ("lockval",):
            mod.global_locks.add(name)

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = program.functions[f"{mod.dotted}.{node.name}"]
            _Fn(program, mod, info, node.body, enclosing_cls=None,
                fn_node=node).run()
        elif isinstance(node, ast.ClassDef):
            cls = program.classes[mod.classes[node.name]]
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    info = program.functions[f"{cls.qname}.{item.name}"]
                    _Fn(program, mod, info, item.body, enclosing_cls=cls,
                        fn_node=item).run()


class _Fn:
    """Single-pass symbolic interpreter for one function body.

    Walks statements in program order tracking a local environment
    (value descriptors + types), the stack of held locks, and loop
    nesting; emits the call/spawn/mutation/load/lock/blocking events
    the fixpoint and the RL10x checks consume.
    """

    def __init__(self, program: Program, mod: _ModuleInfo,
                 info: FunctionInfo, body: List[ast.stmt],
                 enclosing_cls: Optional[ClassInfo],
                 fn_node: Optional[ast.AST] = None,
                 module_level: bool = False):
        self.p = program
        self.mod = mod
        self.info = info
        self.body = body
        self.cls = enclosing_cls
        self.module_level = module_level
        self.locks: List[LockId] = []
        self.loop_depth = 0
        self.loop_names: Set[str] = set()
        self.globals_decl: Set[str] = set()
        self.nonlocals_decl: Set[str] = set()
        self.local_names: Set[str] = set(info.params)
        self.local_locks: Set[str] = set()
        self.return_refs: List[Ref] = []
        if fn_node is not None:
            self._collect_local_names(fn_node)
        else:
            for stmt in body:
                self._collect_local_names(stmt, top=True)

    # -- setup ---------------------------------------------------------------
    def _collect_local_names(self, node: ast.AST, top: bool = False) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and sub is not node:
                self.local_names.add(sub.name)
                # don't descend into nested bodies for locals: ast.walk
                # already flattened; over-collection of nested locals is
                # harmless because bindings are program-order anyway
            elif isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                                  ast.For, ast.withitem, ast.comprehension)):
                targets: List[ast.expr] = []
                if isinstance(sub, ast.Assign):
                    targets = list(sub.targets)
                elif isinstance(sub, (ast.AnnAssign, ast.AugAssign)):
                    targets = [sub.target]
                elif isinstance(sub, ast.For):
                    targets = [sub.target]
                elif isinstance(sub, ast.withitem):
                    targets = [sub.optional_vars] if sub.optional_vars \
                        else []
                else:
                    targets = [sub.target]
                for t in targets:
                    for name_node in ast.walk(t):
                        if isinstance(name_node, ast.Name):
                            self.local_names.add(name_node.id)

    def run(self) -> None:
        for stmt in self.body:
            self._stmt(stmt)
        fresh_tags = ("fresh", "clean", "extracted")
        self.info.returns_fresh = bool(self.return_refs) and all(
            ref[0] in fresh_tags for ref in self.return_refs)
        self.info.return_refs = self.return_refs[:16]

    # -- statements ----------------------------------------------------------
    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            q = f"{self.info.qname}.{node.name}"
            nested = _declare_one(self.p, self.mod, node, q, cls=None,
                                  parent=self.info.qname)
            nested.cls = self.cls.qname if self.cls else None
            self.info.locals_ref[node.name] = ("func", q)
            _Fn(self.p, self.mod, nested, node.body, self.cls,
                fn_node=node).run()
        elif isinstance(node, ast.ClassDef):
            pass                     # function-local classes: out of scope
        elif isinstance(node, ast.Assign):
            ref, tref = self._eval(node.value)
            for target in node.targets:
                self._assign(target, ref, tref, node)
        elif isinstance(node, ast.AnnAssign):
            ann = _ann_to_type(self.p, self.mod, node.annotation)
            if node.value is not None:
                ref, tref = self._eval(node.value)
            else:
                ref, tref = ("opaque",), None
            self._assign(node.target, ref, ann or tref, node)
        elif isinstance(node, ast.AugAssign):
            self._eval(node.value)
            self._assign(node.target, ("opaque",), None, node,
                         kind="augassign")
        elif isinstance(node, ast.Expr):
            self._eval(node.value)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                ref, _ = self._eval(node.value)
                self.return_refs.append(ref)
        elif isinstance(node, ast.With):
            self._with(node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._for(node)
        elif isinstance(node, ast.While):
            self._eval(node.test)
            self.loop_depth += 1
            for stmt in node.body:
                self._stmt(stmt)
            self.loop_depth -= 1
            for stmt in node.orelse:
                self._stmt(stmt)
        elif isinstance(node, ast.If):
            self._eval(node.test)
            for stmt in node.body + node.orelse:
                self._stmt(stmt)
        elif isinstance(node, ast.Try):
            for stmt in node.body:
                self._stmt(stmt)
            for handler in node.handlers:
                for stmt in handler.body:
                    self._stmt(stmt)
            for stmt in node.orelse + node.finalbody:
                self._stmt(stmt)
        elif isinstance(node, ast.Global):
            self.globals_decl.update(node.names)
            self.local_names.difference_update(node.names)
        elif isinstance(node, ast.Nonlocal):
            self.nonlocals_decl.update(node.names)
            self.local_names.difference_update(node.names)
        elif isinstance(node, (ast.Raise, ast.Assert)):
            for sub in ast.iter_child_nodes(node):
                if isinstance(sub, ast.expr):
                    self._eval(sub)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    self._mutate_via_expr(target.value, node, kind="item")
        # Pass/Break/Continue/Import: nothing to model

    # -- with / for ----------------------------------------------------------
    def _with(self, node: ast.With) -> None:
        pushed = 0
        for item in node.items:
            lock = self._lock_of(item.context_expr)
            if lock is not None:
                self.p.acquisitions.append(Acquisition(
                    fn=self.info.qname, relpath=self.info.relpath,
                    line=item.context_expr.lineno, lock=lock,
                    held=frozenset(self.locks)))
                self.info.locks_acquired.add(lock)
                self.locks.append(lock)
                pushed += 1
            else:
                ref, tref = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, ref, tref, node,
                                 bind_only=True)
        for stmt in node.body:
            self._stmt(stmt)
        for _ in range(pushed):
            self.locks.pop()

    def _lock_of(self, expr: ast.expr) -> Optional[LockId]:
        """Identity of the lock entered by ``with expr:``, if any."""
        if isinstance(expr, ast.Attribute):
            base = expr.value
            if isinstance(base, ast.Name) and base.id == "self" \
                    and self.cls is not None:
                norm = self.p.lock_attr(self.cls.qname, expr.attr)
                if norm:
                    return ("attr", self.cls.qname, norm)
                return None
            _, btype = self._eval(base)
            if btype is not None and not btype.container:
                norm = self.p.lock_attr(btype.qname, expr.attr)
                if norm:
                    return ("attr", btype.qname, norm)
            return None
        if isinstance(expr, ast.Name):
            name = expr.id
            if name in self.local_locks:
                return ("local", self.info.qname, name)
            if name in self.local_names:
                return None
            owner, bound = self.p._free_binding(self.info.qname, name)
            if owner is not None and bound == ("lockval",):
                return ("local", owner, name)
            if name in self.mod.global_locks:
                return ("global", self.mod.dotted, name)
        return None

    def _for(self, node) -> None:
        iref, itype = self._eval(node.iter)
        elem_type = TypeRef(itype.qname) if itype and itype.container \
            else None
        for name_node in ast.walk(node.target):
            if isinstance(name_node, ast.Name):
                self.loop_names.add(name_node.id)
        if isinstance(node.target, ast.Name):
            self.info.locals_ref[node.target.id] = ("elem", iref)
            if elem_type:
                self.info.locals_type[node.target.id] = elem_type
        else:
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    self.info.locals_ref[name_node.id] = ("elem", iref)
        self.loop_depth += 1
        for stmt in node.body:
            self._stmt(stmt)
        self.loop_depth -= 1
        for stmt in node.orelse:
            self._stmt(stmt)

    # -- assignment targets --------------------------------------------------
    def _assign(self, target: ast.expr, ref: Ref,
                tref: Optional[TypeRef], node: ast.stmt,
                kind: str = "assign", bind_only: bool = False) -> None:
        if isinstance(target, ast.Name):
            name = target.id
            if ref == ("lockval",):
                self.local_locks.add(name)
            if name in self.globals_decl and not self.module_level:
                self.p.mutations.append(MutationSite(
                    fn=self.info.qname, relpath=self.info.relpath,
                    line=node.lineno,
                    key=("global", self.mod.dotted, name),
                    recv=("global", self.mod.dotted, name),
                    locks=frozenset(self.locks), in_ctor=False,
                    kind=kind))
                return
            if name in self.nonlocals_decl:
                owner, _ = self.p._free_binding(self.info.qname, name)
                self.p.mutations.append(MutationSite(
                    fn=self.info.qname, relpath=self.info.relpath,
                    line=node.lineno,
                    key=("name", owner or self.info.qname, name),
                    recv=("free", name),
                    locks=frozenset(self.locks), in_ctor=False,
                    kind=kind))
                return
            self.info.locals_ref[name] = ref
            if tref is not None:
                self.info.locals_type[name] = tref
            return
        if isinstance(target, ast.Attribute):
            self._mutate_attr(target, node, kind=kind)
            return
        if isinstance(target, ast.Subscript):
            self._mutate_via_expr(target.value, node, kind="item")
            self._eval(target.slice)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, ("opaque",), None, node, kind=kind)
            return
        if isinstance(target, ast.Starred):
            self._assign(target.value, ("opaque",), None, node, kind=kind)

    def _mutate_attr(self, target: ast.Attribute, node: ast.stmt,
                     kind: str) -> None:
        base = target.value
        if isinstance(base, ast.Name) and base.id == "self" \
                and self.cls is not None:
            self.p.mutations.append(MutationSite(
                fn=self.info.qname, relpath=self.info.relpath,
                line=node.lineno,
                key=("attr", self.cls.qname, target.attr),
                recv=("self",), locks=frozenset(self.locks),
                in_ctor=self.info.is_ctor, kind=kind))
            return
        bref, btype = self._eval(base)
        if btype is not None and not btype.container \
                and btype.qname in self.p.classes:
            self.p.mutations.append(MutationSite(
                fn=self.info.qname, relpath=self.info.relpath,
                line=node.lineno,
                key=("attr", btype.qname, target.attr),
                recv=bref, locks=frozenset(self.locks),
                in_ctor=False, kind=kind))

    def _mutate_via_expr(self, base: ast.expr, node: ast.AST,
                         kind: str) -> None:
        """Record a mutation of the object ``base`` evaluates to."""
        if isinstance(base, ast.Attribute):
            bref, btype = self._eval(base.value)
            cls_q: Optional[str] = None
            recv: Ref = bref
            if isinstance(base.value, ast.Name) \
                    and base.value.id == "self" and self.cls is not None:
                cls_q, recv = self.cls.qname, ("self",)
            elif btype is not None and not btype.container \
                    and btype.qname in self.p.classes:
                cls_q = btype.qname
            if cls_q is not None:
                self.p.mutations.append(MutationSite(
                    fn=self.info.qname, relpath=self.info.relpath,
                    line=node.lineno, key=("attr", cls_q, base.attr),
                    recv=recv, locks=frozenset(self.locks),
                    in_ctor=self.info.is_ctor, kind=kind))
            return
        if isinstance(base, ast.Name):
            name = base.id
            if name in self.local_names or name in self.loop_names:
                return                      # mutating our own local
            if name in self.globals_decl or (
                    not self.module_level
                    and self.p.resolve_name(self.mod.dotted, name)
                    == ("global", f"{self.mod.dotted}.{name}")):
                self.p.mutations.append(MutationSite(
                    fn=self.info.qname, relpath=self.info.relpath,
                    line=node.lineno,
                    key=("global", self.mod.dotted, name),
                    recv=("global", self.mod.dotted, name),
                    locks=frozenset(self.locks), in_ctor=False,
                    kind=kind))
                return
            owner, _ = self.p._free_binding(self.info.qname, name)
            if owner is not None:
                self.p.mutations.append(MutationSite(
                    fn=self.info.qname, relpath=self.info.relpath,
                    line=node.lineno, key=("name", owner, name),
                    recv=("free", name),
                    locks=frozenset(self.locks), in_ctor=False,
                    kind=kind))
            return
        if isinstance(base, ast.Subscript):
            # d[k].append(v): the mutated object is an element of d —
            # attribute the mutation to d itself
            self._mutate_via_expr(base.value, node, kind=kind)

    # -- expressions ---------------------------------------------------------
    _SKIP_BUILTINS = {
        "len", "int", "float", "str", "bool", "repr", "hash", "id",
        "abs", "min", "max", "sum", "round", "any", "all", "range",
        "enumerate", "zip", "iter", "next", "print", "isinstance",
        "issubclass", "getattr", "hasattr", "format", "type", "vars",
        "super", "open", "map", "filter", "reversed", "divmod", "ord",
        "chr", "callable",
    }
    _FRESH_BUILTINS = {"list", "dict", "set", "tuple", "sorted",
                       "frozenset", "bytearray", "bytes"}

    def _eval(self, expr: Optional[ast.expr]
              ) -> Tuple[Ref, Optional[TypeRef]]:
        if expr is None:
            return ("opaque",), None
        if isinstance(expr, ast.Name):
            return self._eval_name(expr)
        if isinstance(expr, ast.Attribute):
            return self._eval_attr(expr)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.Constant):
            return ("fresh",), None
        if isinstance(expr, (ast.List, ast.Set, ast.Tuple)):
            for elt in expr.elts:
                self._eval(elt)
            return ("fresh",), None
        if isinstance(expr, ast.Dict):
            for sub in list(expr.keys) + list(expr.values):
                if sub is not None:
                    self._eval(sub)
            return ("fresh",), None
        if isinstance(expr, ast.Subscript):
            bref, btype = self._eval(expr.value)
            self._eval(expr.slice)
            etype = TypeRef(btype.qname) if btype and btype.container \
                else None
            return ("elem", bref), etype
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test)
            ref_a, type_a = self._eval(expr.body)
            ref_b, type_b = self._eval(expr.orelse)
            return ("either", ref_a, ref_b), type_a or type_b
        if isinstance(expr, ast.BoolOp):
            refs = [self._eval(v) for v in expr.values]
            out_ref, out_type = refs[0]
            for ref, tref in refs[1:]:
                out_ref = ("either", out_ref, ref)
                out_type = out_type or tref
            return out_ref, out_type
        if isinstance(expr, (ast.BinOp, ast.Compare, ast.UnaryOp)):
            for sub in ast.iter_child_nodes(expr):
                if isinstance(sub, ast.expr):
                    self._eval(sub)
            return ("opaque",), None
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            return self._eval_comp(expr)
        if isinstance(expr, ast.Lambda):
            return ("opaque",), None
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, ast.JoinedStr):
            for val in expr.values:
                if isinstance(val, ast.FormattedValue):
                    self._eval(val.value)
            return ("fresh",), None
        if isinstance(expr, ast.Await):
            return self._eval(expr.value)
        if isinstance(expr, (ast.Yield, ast.YieldFrom)):
            if expr.value is not None:
                self._eval(expr.value)
            return ("opaque",), None
        if isinstance(expr, ast.NamedExpr):
            ref, tref = self._eval(expr.value)
            self._assign(expr.target, ref, tref, expr)
            return ref, tref
        if isinstance(expr, ast.Slice):
            for sub in (expr.lower, expr.upper, expr.step):
                if sub is not None:
                    self._eval(sub)
            return ("opaque",), None
        return ("opaque",), None

    def _eval_comp(self, expr) -> Tuple[Ref, Optional[TypeRef]]:
        for gen in expr.generators:
            iref, itype = self._eval(gen.iter)
            elem_type = TypeRef(itype.qname) if itype and itype.container \
                else None
            for name_node in ast.walk(gen.target):
                if isinstance(name_node, ast.Name):
                    self.loop_names.add(name_node.id)
                    self.info.locals_ref[name_node.id] = ("elem", iref)
                    if elem_type:
                        self.info.locals_type[name_node.id] = elem_type
            for cond in gen.ifs:
                self._eval(cond)
        self.loop_depth += 1
        if isinstance(expr, ast.DictComp):
            self._eval(expr.key)
            self._eval(expr.value)
        else:
            self._eval(expr.elt)
        self.loop_depth -= 1
        # a comprehension of constructor calls yields a fresh container
        # of that element type
        elt = expr.value if isinstance(expr, ast.DictComp) else expr.elt
        etype: Optional[TypeRef] = None
        if isinstance(elt, ast.Call):
            dotted = _dotted_of(elt.func)
            if dotted:
                sym = _resolve_dotted_in_module(self.p, self.mod, dotted)
                if sym and sym[0] == "class":
                    etype = TypeRef(sym[1], container=True)
        return ("fresh",), etype

    def _eval_name(self, expr: ast.Name) -> Tuple[Ref, Optional[TypeRef]]:
        name = expr.id
        if name == "self" and self.cls is not None \
                and "self" in self.info.params:
            return ("self",), TypeRef(self.cls.qname)
        if name in self.info.locals_ref:
            return self.info.locals_ref[name], \
                self.info.locals_type.get(name)
        if name in self.info.params:
            return ("param", name), self.info.param_ann.get(name)
        if name in self.local_names or name in self.loop_names:
            return ("opaque",), None          # assigned later / loop var
        if self.info.parent is not None:
            owner, bound = self.p._free_binding(self.info.qname, name)
            if owner is not None:
                owner_info = self.p.functions.get(owner)
                ftype = None
                if owner_info is not None:
                    ftype = owner_info.locals_type.get(name) \
                        or owner_info.param_ann.get(name)
                return ("free", name), ftype
        sym = self.p.resolve_name(self.mod.dotted, name)
        if sym is None:
            return ("opaque",), None
        if sym[0] == "func":
            return ("func", sym[1]), None
        if sym[0] == "class":
            return ("cls", sym[1]), None
        if sym[0] == "module":
            return ("mod", sym[1]), None
        if sym[0] == "global":
            owner_mod, _, gname = sym[1].rpartition(".")
            owner = self.p.modules.get(owner_mod)
            gtype = owner.global_types.get(gname) if owner else None
            key = ("global", owner_mod, gname)
            if owner is not None and gname in owner.global_names \
                    and gname not in owner.global_locks:
                self.p.loads.append(LoadSite(
                    fn=self.info.qname, relpath=self.info.relpath,
                    line=expr.lineno, key=key))
            return key, gtype
        return ("opaque",), None

    def _eval_attr(self, expr: ast.Attribute
                   ) -> Tuple[Ref, Optional[TypeRef]]:
        dotted = _dotted_of(expr)
        if dotted and "." in dotted:
            head = dotted.split(".", 1)[0]
            if head not in self.info.locals_ref \
                    and head not in self.info.params \
                    and head not in self.local_names:
                sym = _resolve_dotted_in_module(self.p, self.mod, dotted)
                if sym is not None:
                    if sym[0] == "func":
                        return ("func", sym[1]), None
                    if sym[0] == "class":
                        return ("cls", sym[1]), None
                    if sym[0] == "global":
                        owner_mod, _, gname = sym[1].rpartition(".")
                        owner = self.p.modules.get(owner_mod)
                        gtype = owner.global_types.get(gname) \
                            if owner else None
                        return ("global", owner_mod, gname), gtype
                    if sym[0] == "external":
                        return ("ext", sym[1]), None
        bref, btype = self._eval(expr.value)
        attr = expr.attr
        cls_q: Optional[str] = None
        if bref == ("self",) and self.cls is not None:
            cls_q = self.cls.qname
        elif btype is not None and not btype.container \
                and btype.qname in self.p.classes:
            cls_q = btype.qname
        if cls_q is not None:
            meth = self.p.lookup_method(cls_q, attr)
            if meth is not None:
                return ("bound", bref, meth, self.info.qname), None
            atype = self.p.attr_type(cls_q, attr)
            self.p.loads.append(LoadSite(
                fn=self.info.qname, relpath=self.info.relpath,
                line=expr.lineno, key=("attr", cls_q, attr)))
            return ("attr", bref, attr), atype
        return ("attr", bref, attr), None

    # -- calls ---------------------------------------------------------------
    def _eval_args(self, node: ast.Call
                   ) -> List[Tuple[Optional[str], Ref, Optional[TypeRef]]]:
        out: List[Tuple[Optional[str], Ref, Optional[TypeRef]]] = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                self._eval(arg.value)
                continue
            ref, tref = self._eval(arg)
            out.append((None, ref, tref))
        for kw in node.keywords:
            ref, tref = self._eval(kw.value)
            if kw.arg is not None:
                out.append((kw.arg, ref, tref))
        return out

    def _record_spawn(self, node: ast.Call, target_ref: Ref,
                      raw_args: List[Tuple[Ref, Optional[TypeRef], bool]],
                      target_expr: Optional[ast.expr]) -> None:
        in_loop = self.loop_depth > 0
        self.info.spawns.append(SpawnSite(
            fn=self.info.qname, line=node.lineno, target=target_ref,
            args=raw_args, in_loop=in_loop))
        display = _dotted_of(target_expr) if target_expr is not None \
            else None
        for ref, tref, loop_var in raw_args:
            self.p.spawn_args.append(SpawnArg(
                fn=self.info.qname, relpath=self.info.relpath,
                line=node.lineno, ref=ref, type=tref,
                loop_var=loop_var, in_loop=in_loop,
                target=display or "<thread target>"))

    def _spawn_from_thread_ctor(self, node: ast.Call) -> None:
        target_ref: Ref = ("opaque",)
        target_expr: Optional[ast.expr] = None
        raw_args: List[Tuple[Ref, Optional[TypeRef], bool]] = []
        for kw in node.keywords:
            if kw.arg == "target":
                target_expr = kw.value
                target_ref, _ = self._eval(kw.value)
            elif kw.arg in ("args", "kwargs"):
                elts: List[ast.expr] = []
                if isinstance(kw.value, (ast.Tuple, ast.List)):
                    elts = list(kw.value.elts)
                elif isinstance(kw.value, ast.Dict):
                    elts = [v for v in kw.value.values if v is not None]
                for elt in elts:
                    ref, tref = self._eval(elt)
                    loop_var = isinstance(elt, ast.Name) \
                        and elt.id in self.loop_names
                    raw_args.append((ref, tref, loop_var))
            else:
                self._eval(kw.value)
        for arg in node.args:            # positional Thread(group, target)
            self._eval(arg)
        self._record_spawn(node, target_ref, raw_args, target_expr)

    def _spawn_from_submit(self, node: ast.Call) -> None:
        target_ref: Ref = ("opaque",)
        target_expr: Optional[ast.expr] = None
        raw_args: List[Tuple[Ref, Optional[TypeRef], bool]] = []
        for index, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                self._eval(arg.value)
                continue
            ref, tref = self._eval(arg)
            if index == 0:
                target_ref, target_expr = ref, arg
            else:
                loop_var = isinstance(arg, ast.Name) \
                    and arg.id in self.loop_names
                raw_args.append((ref, tref, loop_var))
        for kw in node.keywords:
            ref, tref = self._eval(kw.value)
            loop_var = isinstance(kw.value, ast.Name) \
                and kw.value.id in self.loop_names
            raw_args.append((ref, tref, loop_var))
        self._record_spawn(node, target_ref, raw_args, target_expr)

    def _has_timeout(self, node: ast.Call) -> bool:
        return bool(node.args) or any(
            kw.arg == "timeout" for kw in node.keywords)

    def _eval_call(self, node: ast.Call) -> Tuple[Ref, Optional[TypeRef]]:
        func = node.func
        dotted = _dotted_of(func)
        shadowed = False
        if dotted:
            head = dotted.split(".", 1)[0]
            shadowed = (head in self.info.locals_ref
                        or head in self.info.params
                        or head in self.local_names
                        or head in self.loop_names
                        or (head == "self" and "." in dotted))
        if dotted and not shadowed:
            sym = _resolve_dotted_in_module(self.p, self.mod, dotted)
            if sym is not None and sym[0] == "external":
                return self._call_external(node, sym[1])
            if sym is not None and sym[0] == "func":
                args = self._eval_args(node)
                info = self.p.functions.get(sym[1])
                self.info.calls.append(CallSite(
                    fn=self.info.qname, line=node.lineno, callee=sym[1],
                    callee_ref=None, recv=None, args=args,
                    locks=frozenset(self.locks)))
                return ("call", sym[1]), info.returns if info else None
            if sym is not None and sym[0] == "class":
                args = self._eval_args(node)
                init = self.p.lookup_method(sym[1], "__init__")
                self.info.calls.append(CallSite(
                    fn=self.info.qname, line=node.lineno, callee=init,
                    callee_ref=None, recv=("fresh",), args=args,
                    locks=frozenset(self.locks)))
                return ("fresh",), TypeRef(sym[1])
            if sym is not None and sym[0] == "global":
                # calling a module-level value (callable global)
                owner_mod, _, gname = sym[1].rpartition(".")
                args = self._eval_args(node)
                self.info.calls.append(CallSite(
                    fn=self.info.qname, line=node.lineno, callee=None,
                    callee_ref=("global", owner_mod, gname), recv=None,
                    args=args, locks=frozenset(self.locks)))
                return ("opaque",), None
        if isinstance(func, ast.Name):
            return self._call_name(node, func.id)
        if isinstance(func, ast.Attribute):
            return self._call_method(node, func)
        self._eval(func)
        self._eval_args(node)
        return ("opaque",), None

    def _call_external(self, node: ast.Call,
                       ext: str) -> Tuple[Ref, Optional[TypeRef]]:
        if ext in _SANITIZERS:
            args = self._eval_args(node)
            tref = args[0][2] if args else None
            return ("clean",), tref
        if ext == _THREAD_CTOR:
            self._spawn_from_thread_ctor(node)
            return ("fresh",), None
        if ext in _EXECUTOR_CTORS:
            self._eval_args(node)
            return ("fresh",), TypeRef("@executor")
        if ext in _LOCK_CTORS:
            self._eval_args(node)
            return ("lockval",), None
        if ext == _COND_CTOR:
            self._eval_args(node)
            return ("lockval",), None
        if ext == "time.sleep":
            self._eval_args(node)
            if self.locks:
                self.p.blocking.append(BlockingSite(
                    fn=self.info.qname, relpath=self.info.relpath,
                    line=node.lineno, locks=frozenset(self.locks),
                    what="time.sleep"))
            return ("fresh",), None
        args = self._eval_args(node)
        if ext.endswith(".Queue") or ext in ("queue.Queue",
                                             "queue.PriorityQueue",
                                             "queue.LifoQueue"):
            elem = next((a[2].qname for a in args
                         if a[2] is not None), None)
            return ("fresh",), TypeRef(elem or "@unknown",
                                       container=True, queue=True)
        self.info.calls.append(CallSite(
            fn=self.info.qname, line=node.lineno, callee=None,
            callee_ref=None, recv=None, args=args,
            locks=frozenset(self.locks), external=ext))
        return ("fresh",), None

    def _call_name(self, node: ast.Call,
                   name: str) -> Tuple[Ref, Optional[TypeRef]]:
        if name in self._FRESH_BUILTINS:
            args = self._eval_args(node)
            tref = args[0][2] if args else None
            if tref is not None and tref.container:
                return ("fresh",), TypeRef(tref.qname, container=True)
            return ("fresh",), None
        if name in self._SKIP_BUILTINS:
            self._eval_args(node)
            return ("opaque",), None
        ref, _ = self._eval_name(ast.copy_location(
            ast.Name(id=name, ctx=ast.Load()), node))
        args = self._eval_args(node)
        if ref[0] == "func":
            self.info.calls.append(CallSite(
                fn=self.info.qname, line=node.lineno, callee=ref[1],
                callee_ref=None, recv=None, args=args,
                locks=frozenset(self.locks)))
            info = self.p.functions.get(ref[1])
            return ("call", ref[1]), info.returns if info else None
        if ref[0] == "cls":
            init = self.p.lookup_method(ref[1], "__init__")
            self.info.calls.append(CallSite(
                fn=self.info.qname, line=node.lineno, callee=init,
                callee_ref=None, recv=("fresh",), args=args,
                locks=frozenset(self.locks)))
            return ("fresh",), TypeRef(ref[1])
        if ref[0] in ("param", "free", "bound", "attr", "global",
                      "either", "elem", "call"):
            self.info.calls.append(CallSite(
                fn=self.info.qname, line=node.lineno, callee=None,
                callee_ref=ref, recv=None, args=args,
                locks=frozenset(self.locks)))
            return ("opaque",), None
        return ("opaque",), None

    def _call_method(self, node: ast.Call,
                     func: ast.Attribute) -> Tuple[Ref, Optional[TypeRef]]:
        attr = func.attr
        bref, btype = self._eval(func.value)
        cls_q: Optional[str] = None
        if bref == ("self",) and self.cls is not None:
            cls_q = self.cls.qname
        elif btype is not None and not btype.container \
                and btype.qname in self.p.classes:
            cls_q = btype.qname
        if btype is not None and btype.qname == "@executor" \
                and attr in ("submit", "map"):
            self._spawn_from_submit(node)
            return ("fresh",), None
        if btype is not None and btype.queue and attr == "get":
            self._eval_args(node)
            if self.locks and not self._has_timeout(node):
                self.p.blocking.append(BlockingSite(
                    fn=self.info.qname, relpath=self.info.relpath,
                    line=node.lineno, locks=frozenset(self.locks),
                    what="queue.get"))
            elem = None if btype.qname == "@unknown" \
                else TypeRef(btype.qname)
            return ("extracted",), elem
        if cls_q is not None:
            meth = self.p.lookup_method(cls_q, attr)
            if meth is not None:
                args = self._eval_args(node)
                self.info.calls.append(CallSite(
                    fn=self.info.qname, line=node.lineno, callee=meth,
                    callee_ref=None, recv=bref, args=args,
                    locks=frozenset(self.locks)))
                info = self.p.functions.get(meth)
                return ("call", meth), info.returns if info else None
            holder = self.p.classes.get(cls_q)
            if holder is not None and attr in holder.callable_attrs:
                args = self._eval_args(node)
                self.info.calls.append(CallSite(
                    fn=self.info.qname, line=node.lineno, callee=None,
                    callee_ref=("attrcall", cls_q, attr), recv=bref,
                    args=args, locks=frozenset(self.locks)))
                return ("opaque",), None
        if attr in _MUTATORS:
            self._mutate_via_expr(func.value, node, kind="call")
        args = self._eval_args(node)
        if attr in _EXTRACTORS:
            elem = TypeRef(btype.qname) if btype and btype.container \
                else None
            return ("extracted",), elem
        if attr in _BLOCKING_METHODS and not node.args \
                and not self._has_timeout(node) and self.locks:
            self.p.blocking.append(BlockingSite(
                fn=self.info.qname, relpath=self.info.relpath,
                line=node.lineno, locks=frozenset(self.locks),
                what=f".{attr}()"))
        # unresolved method call: raw material for the escape rule
        if args:
            self.info.calls.append(CallSite(
                fn=self.info.qname, line=node.lineno, callee=None,
                callee_ref=None, recv=bref, args=args,
                locks=frozenset(self.locks), external=f"?.{attr}"))
        return ("opaque",), None


# -- fixpoint ------------------------------------------------------------------

def _callee_targets(program: Program, ref: Ref, fn: str,
                    _depth: int = 0
                    ) -> List[Tuple[str, Optional[Ref], str]]:
    """Resolve a callable-valued ref to ``(callee, recv_ref, origin_fn)``.

    ``origin_fn`` is the function in whose context ``recv_ref`` must be
    taint-evaluated (bound-method handles carry their capture site).
    """
    if _depth > 8 or not isinstance(ref, tuple) or not ref:
        return []
    tag = ref[0]
    if tag == "func":
        return [(ref[1], None, fn)]
    if tag == "bound":
        return [(ref[2], ref[1], ref[3])]
    if tag == "param":
        return list(program._callable_sets.get((fn, ref[1]), ()))
    if tag == "free":
        owner, bound = program._free_binding(fn, ref[1])
        if owner is None:
            return []
        return _callee_targets(program, bound, owner, _depth + 1)
    if tag == "attrcall":
        return list(program._attr_callables.get((ref[1], ref[2]), ()))
    if tag == "attr":
        base = ref[1]
        cls_q: Optional[str] = None
        if base == ("self",):
            info = program.functions.get(fn)
            cls_q = info.cls if info else None
        if cls_q is not None:
            return list(program._attr_callables.get((cls_q, ref[2]), ()))
        return []
    if tag == "either":
        return (_callee_targets(program, ref[1], fn, _depth + 1)
                + _callee_targets(program, ref[2], fn, _depth + 1))
    if tag == "call":
        return []
    return []


class _FixpointState:
    def __init__(self, program: Program):
        self.p = program
        self.changed = False

    def mark_thread(self, qname: str, entry: bool = False) -> None:
        info = self.p.functions.get(qname)
        if info is None:
            return
        if qname not in self.p.thread_side:
            self.p.thread_side.add(qname)
            self.changed = True
        if entry and not info.is_entrypoint:
            info.is_entrypoint = True
            self.changed = True

    def join_self(self, qname: str, taint: int) -> None:
        cur = self.p._self_taint.get(qname, CONFINED)
        new = max(cur, taint)
        if new != cur:
            self.p._self_taint[qname] = new
            self.changed = True

    def join_param(self, qname: str, pname: str, taint: int) -> None:
        key = (qname, pname)
        cur = self.p._param_taint.get(key, CLEAN)
        new = max(cur, taint)
        if new != cur or key not in self.p._param_taint:
            if new != cur:
                self.changed = True
            self.p._param_taint[key] = new

    def flow_callables(self, qname: str, pname: str,
                       targets) -> None:
        if not targets:
            return
        dest = self.p._callable_sets.setdefault((qname, pname), set())
        before = len(dest)
        dest.update(targets)
        if len(dest) != before:
            self.changed = True


def _bind_call(state: _FixpointState, caller: str, call: CallSite,
               callee_q: str, taint_args: bool) -> None:
    """Flow one call edge: callable values always, taints when the
    caller is on the thread side."""
    program = state.p
    info = program.functions.get(callee_q)
    if info is None:
        return
    params = info.params
    skip = 1 if params and params[0] in ("self", "cls") else 0
    positional = [a for a in call.args if a[0] is None]
    for index, (_, ref, _tref) in enumerate(positional):
        pindex = skip + index
        if pindex >= len(params):
            break
        pname = params[pindex]
        state.flow_callables(callee_q, pname,
                             _callee_targets(program, ref, caller))
        if taint_args:
            state.join_param(callee_q, pname,
                             program.taint(ref, caller))
    for name, ref, _tref in call.args:
        if name is None or name not in params:
            continue
        state.flow_callables(callee_q, name,
                             _callee_targets(program, ref, caller))
        if taint_args:
            state.join_param(callee_q, name,
                             program.taint(ref, caller))


def _bind_spawn(state: _FixpointState, fn: FunctionInfo,
                spawn: SpawnSite) -> None:
    program = state.p
    for callee_q, recv_ref, origin in _callee_targets(
            program, spawn.target, fn.qname):
        state.mark_thread(callee_q, entry=True)
        if recv_ref is not None:
            base = program.taint(recv_ref, origin)
            state.join_self(callee_q,
                            CLEAN if base == CLEAN else SHARED)
        info = program.functions.get(callee_q)
        if info is None:
            continue
        params = info.params
        skip = 1 if recv_ref is not None and params \
            and params[0] in ("self", "cls") else 0
        for index, (ref, _tref, loop_var) in enumerate(spawn.args):
            pindex = skip + index
            if pindex >= len(params):
                break
            pname = params[pindex]
            state.flow_callables(callee_q, pname,
                                 _callee_targets(program, ref, fn.qname))
            if loop_var:
                taint = CONFINED
            elif spawn.in_loop:
                taint = SHARED
            else:
                taint = program.taint(ref, fn.qname)
            state.join_param(callee_q, pname, taint)


def _fixpoint(program: Program) -> None:
    for _round in range(60):
        state = _FixpointState(program)
        for fn in program.functions.values():
            caller_threaded = fn.qname in program.thread_side
            for spawn in fn.spawns:
                _bind_spawn(state, fn, spawn)
            for call in fn.calls:
                if call.callee is not None:
                    if caller_threaded:
                        state.mark_thread(call.callee)
                        if call.recv is not None:
                            state.join_self(
                                call.callee,
                                program.taint(call.recv, fn.qname))
                    _bind_call(state, fn.qname, call, call.callee,
                               taint_args=caller_threaded)
                elif call.callee_ref is not None:
                    for callee_q, recv_ref, origin in _callee_targets(
                            program, call.callee_ref, fn.qname):
                        if caller_threaded:
                            state.mark_thread(callee_q)
                            if recv_ref is not None:
                                base = program.taint(recv_ref, origin)
                                if origin != fn.qname and base != CLEAN:
                                    base = SHARED
                                state.join_self(callee_q, base)
                        _bind_call(state, fn.qname, call, callee_q,
                                   taint_args=caller_threaded)
                elif caller_threaded:
                    # unresolved call leaving the model: any shared,
                    # in-tree-typed argument escapes to unknown code
                    for _name, ref, tref in call.args:
                        if tref is None or tref.container:
                            continue
                        if tref.qname not in program.classes:
                            continue
                        if program.taint(ref, fn.qname) != SHARED:
                            continue
                        if tref.qname not in program.escaped_classes:
                            program.escaped_classes.add(tref.qname)
                            state.changed = True
        for cls_q in list(program.escaped_classes):
            cls = program.classes.get(cls_q)
            if cls is None:
                continue
            for meth_q in cls.methods.values():
                state.mark_thread(meth_q)
                state.join_self(meth_q, SHARED)
        for cls_q, attr, init_fn, pname in program._attr_flows:
            targets = program._callable_sets.get((init_fn, pname))
            if not targets:
                continue
            dest = program._attr_callables.setdefault((cls_q, attr),
                                                      set())
            before = len(dest)
            dest.update(targets)
            if len(dest) != before:
                state.changed = True
        program._unsafe_cache.clear()
        if not state.changed:
            break


# -- main side -----------------------------------------------------------------

def _compute_main_side(program: Program) -> None:
    """BFS from call-graph roots along *call* edges (spawn edges are
    exactly what separates the main side from the thread side)."""
    callers: Dict[str, Set[str]] = {}
    spawn_targets: Set[str] = set()
    edges: Dict[str, Set[str]] = {}
    for fn in program.functions.values():
        out = edges.setdefault(fn.qname, set())
        for call in fn.calls:
            targets: List[str] = []
            if call.callee is not None:
                targets = [call.callee]
            elif call.callee_ref is not None:
                targets = [t[0] for t in _callee_targets(
                    program, call.callee_ref, fn.qname)]
            for target in targets:
                if target in program.functions:
                    out.add(target)
                    callers.setdefault(target, set()).add(fn.qname)
        for spawn in fn.spawns:
            for target, _recv, _origin in _callee_targets(
                    program, spawn.target, fn.qname):
                spawn_targets.add(target)

    roots = [q for q, info in program.functions.items()
             if info.name == "<module>"
             or (q not in spawn_targets and not callers.get(q))]
    seen: Set[str] = set()
    frontier = list(roots)
    while frontier:
        qname = frontier.pop()
        if qname in seen:
            continue
        seen.add(qname)
        for nxt in edges.get(qname, ()):
            if nxt not in seen and nxt not in spawn_targets:
                frontier.append(nxt)
    program.main_side = seen
