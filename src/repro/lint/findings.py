"""Finding records emitted by the instrumentation-soundness checks.

A :class:`Finding` pinpoints one violation: file (relative to the scan
root), 1-based line, 0-based column, check id (``RL001``...), severity
(``error`` | ``warning``), and a human-readable message.  Findings are
value objects — the engine sorts, suppresses (pragmas), and filters
(baseline) them without the checks' involvement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING)


@dataclass(frozen=True)
class Finding:
    """One static-analysis violation."""

    path: str          #: posix path relative to the scan root
    line: int          #: 1-based line number
    col: int           #: 0-based column offset
    check_id: str      #: e.g. ``RL001``
    severity: str      #: ``error`` or ``warning``
    message: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.check_id)

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Baseline identity: stable across unrelated line shifts."""
        return (self.path, self.check_id, self.message)

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.check_id} {self.severity}: {self.message}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "check_id": self.check_id,
            "severity": self.severity,
            "message": self.message,
        }
