"""RL106: serve-path spans must carry a TraceContext (no orphan spans).

The request-scoped tracing contract says every span opened on the
serving path is attributable to the trace that caused it: a
``serve:*`` span opened without a ``ctx=`` keyword is an *orphan* —
it renders in the timeline but can never be grouped under a request,
which silently breaks waterfall reports, tail sampling, and the
cross-process trace reconstruction ROADMAP item 2 depends on.

The check is syntactic and module-path independent: any call to a
function named ``span`` (or the conventional ``_span`` import alias)
whose first argument is a string literal — or an f-string with a
literal head — starting with ``serve:`` must pass ``ctx=``.  The
synthesizer in ``serve/tracing.py`` is exempt: it *constructs*
``SpanRecord`` objects with explicit trace ids rather than opening
live spans.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.engine import LintContext, ModuleSource
from repro.lint.findings import SEVERITY_ERROR
from repro.lint.registry import LintCheck, register_check

#: function names that open a live span
_SPAN_FUNCS = {"span", "_span"}

#: the prefix marking a serving-path span name
_SERVE_PREFIX = "serve:"


def _call_func_name(func: ast.expr) -> Optional[str]:
    """Terminal name of a call target: ``obs.span`` -> ``span``."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _literal_head(node: ast.expr) -> Optional[str]:
    """The literal string head of a span-name argument, if static."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return None


class _ServeSpanVisitor(ast.NodeVisitor):
    def __init__(self, check: "ServeSpanContext", module: ModuleSource,
                 ctx: LintContext):
        self.check = check
        self.module = module
        self.ctx = ctx

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_func_name(node.func)
        if name in _SPAN_FUNCS and node.args:
            head = _literal_head(node.args[0])
            if head is not None and head.startswith(_SERVE_PREFIX):
                has_ctx = any(kw.arg == "ctx" for kw in node.keywords)
                if not has_ctx:
                    self.ctx.report(
                        self.check, self.module.relpath, node.lineno,
                        node.col_offset,
                        f"serve-path span {head!r} opened without a "
                        f"TraceContext; pass ctx=<TraceContext> so the "
                        f"span (and everything beneath it) is "
                        f"attributable to the request trace it serves")
        self.generic_visit(node)


@register_check
class ServeSpanContext(LintCheck):
    check_id = "RL106"
    name = "serve-span-trace-context"
    description = ("spans opened on the serve request path must carry "
                   "a TraceContext (ctx=...) — no orphan serve spans")
    severity = SEVERITY_ERROR
    example = (
        "with span('serve:batch', bid=batch.bid):   # RL106: orphan\n"
        "    run(batch)\n"
        "# fix:\n"
        "with span('serve:batch', ctx=batch_trace_context(batch),\n"
        "          bid=batch.bid):\n"
        "    run(batch)\n")

    def visit_module(self, module: ModuleSource, ctx: LintContext) -> None:
        _ServeSpanVisitor(self, module, ctx).visit(module.tree)
