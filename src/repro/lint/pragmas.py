"""Inline suppression pragmas.

Two forms, both trailing comments:

* line-level — suppresses matching findings reported on that physical
  line::

      spectrum = np.exp(arg)  # repro-lint: disable=RL001 -- calibration only

* file-level — anywhere in the file, on a line of its own, suppresses
  the named checks for the whole module::

      # repro-lint: disable-file=RL004 -- dataset shuffling is not measured

Several ids may be comma-separated (``disable=RL001,RL004``) and
``all`` suppresses every check.  The text after ``--`` is the required
human reason; it is not machine-checked but reviewers should treat a
pragma without one as a defect.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Set

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<ids>[A-Za-z0-9_*,\s]+?)\s*(?:--\s*(?P<reason>.*))?$")


@dataclass
class PragmaIndex:
    """Per-module suppression table parsed from raw source."""

    line_disables: Dict[int, Set[str]] = field(default_factory=dict)
    file_disables: Set[str] = field(default_factory=set)

    @classmethod
    def from_source(cls, source: str) -> "PragmaIndex":
        index = cls()
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _PRAGMA_RE.search(text)
            if match is None:
                continue
            ids = {part.strip().upper()
                   for part in match.group("ids").split(",")
                   if part.strip()}
            if match.group("scope") == "disable-file":
                index.file_disables |= ids
            else:
                index.line_disables.setdefault(lineno, set()).update(ids)
        return index

    def suppresses(self, check_id: str, line: int) -> bool:
        """True if ``check_id`` is disabled on ``line`` or file-wide."""
        wanted = {check_id.upper(), "ALL"}
        if self.file_disables & wanted:
            return True
        return bool(self.line_disables.get(line, set()) & wanted)
