"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from typing import List, Optional

from repro.lint.engine import LintResult
from repro.lint.findings import Finding

REPORT_VERSION = 1


def render_text(result: LintResult, new: List[Finding],
                grandfathered: List[Finding]) -> str:
    """Human-readable report: one line per new finding plus a summary."""
    lines = [finding.render() for finding in new]
    errors = sum(1 for f in new if f.severity == "error")
    warnings = len(new) - errors
    summary = (f"repro-lint: {result.files_scanned} files, "
               f"{len(result.checks_run)} checks: "
               f"{errors} error(s), {warnings} warning(s)")
    extras = []
    if grandfathered:
        extras.append(f"{len(grandfathered)} baselined")
    if result.suppressed:
        extras.append(f"{len(result.suppressed)} pragma-suppressed")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult, new: List[Finding],
                grandfathered: List[Finding],
                strict: bool = False) -> str:
    """Machine-readable report (stable schema, versioned)."""
    errors = sum(1 for f in new if f.severity == "error")
    payload = {
        "version": REPORT_VERSION,
        "strict": strict,
        "findings": [f.to_dict() for f in new],
        "summary": {
            "files_scanned": result.files_scanned,
            "checks_run": list(result.checks_run),
            "errors": errors,
            "warnings": len(new) - errors,
            "baselined": len(grandfathered),
            "suppressed": len(result.suppressed),
        },
    }
    return json.dumps(payload, indent=2)
