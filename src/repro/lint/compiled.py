"""RL108: compiled-executor soundness (``repro.compile`` path).

The compiled tier's bit-exactness contract rests on two invariants
that are easy to erode one edit at a time:

1. **no raw-numpy bypass** — every kernel a compiled replay runs must
   be the *instrumented closure* the op was captured with.  A module
   on the compile path that calls numpy compute directly (the same
   :data:`repro.lint.checks._NUMPY_COMPUTE` surface RL001 polices in
   the workload zones) produces outputs whose FLOPs/bytes never hit
   the plan's bulk counters, silently breaking counter-digest
   equality with eager;
2. **no unclassified templates** — every replayed op name must map
   into the ``OP_CATEGORIES`` taxonomy.  The registry lookup
   (``category_for``) raises ``KeyError`` on unknown names; a
   ``try/except KeyError`` around it whose handler does not re-raise
   *swallows* the unknown template, and the plan would then replay an
   op the characterization tables cannot account for.

The check applies to any module whose path mentions ``compile`` —
the ``src/repro/compile`` zone itself plus seeded mutant fixtures
(``tests/fixtures/compile_mutants``) the CI gate lints explicitly.
"""

from __future__ import annotations

import ast

from repro.lint.checks import _NUMPY_COMPUTE, _NUMPY_COMPUTE_PREFIXES
from repro.lint.engine import LintContext, ModuleSource
from repro.lint.findings import SEVERITY_ERROR
from repro.lint.registry import LintCheck, register_check


def _on_compile_path(relpath: str) -> bool:
    return any("compile" in part for part in relpath.split("/"))


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise)
               for node in ast.walk(handler))


def _catches_keyerror(handler: ast.ExceptHandler) -> bool:
    """Does this handler catch ``KeyError`` (incl. bare ``except``)?"""
    exc = handler.type
    if exc is None:                              # bare except
        return True
    names = exc.elts if isinstance(exc, ast.Tuple) else [exc]
    for name in names:
        if isinstance(name, ast.Name) and name.id in ("KeyError",
                                                      "Exception",
                                                      "BaseException"):
            return True
    return False


def _calls_category_for(body: list) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else "")
            if name == "category_for":
                return True
    return False


class _CompiledVisitor(ast.NodeVisitor):
    def __init__(self, check: "CompiledExecutorSoundness",
                 module: ModuleSource, ctx: LintContext):
        self.check = check
        self.module = module
        self.ctx = ctx

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self.module.resolve_call("numpy", node.func)
        if dotted is not None and (
                dotted in _NUMPY_COMPUTE
                or dotted.startswith(_NUMPY_COMPUTE_PREFIXES)):
            self.ctx.report(
                self.check, self.module.relpath, node.lineno,
                node.col_offset,
                f"raw numpy compute np.{dotted} on the compile path "
                f"bypasses the captured instrumented kernels; its "
                f"FLOPs/bytes never reach the plan's bulk counters, "
                f"breaking the compiled tier's counter-digest equality "
                f"with eager")
        self.generic_visit(node)

    def visit_Try(self, node: ast.Try) -> None:
        if _calls_category_for(node.body):
            for handler in node.handlers:
                if (_catches_keyerror(handler)
                        and not _handler_reraises(handler)):
                    self.ctx.report(
                        self.check, self.module.relpath,
                        handler.lineno, handler.col_offset,
                        "except clause swallows the KeyError from "
                        "category_for(); an op template missing from "
                        "OP_CATEGORIES must abort plan capture/replay "
                        "(re-raise a classified PlanError), not slip "
                        "into a plan the characterization tables "
                        "cannot account for")
        self.generic_visit(node)


@register_check
class CompiledExecutorSoundness(LintCheck):
    check_id = "RL108"
    name = "compiled-executor-soundness"
    description = ("compile-path modules must replay captured "
                   "instrumented kernels (no raw numpy compute) and "
                   "must not swallow unknown-template KeyErrors from "
                   "category_for")
    severity = SEVERITY_ERROR
    example = (
        "out = np.matmul(a, b)                # RL108: raw kernel\n"
        "try:\n"
        "    category_for(step.name)\n"
        "except KeyError:\n"
        "    pass                             # RL108: swallowed\n"
        "# fix: run the captured compute closure, and re-raise\n"
        "# unknown templates as PlanCaptureError\n")

    def visit_module(self, module: ModuleSource, ctx: LintContext) -> None:
        if not _on_compile_path(module.relpath):
            return
        _CompiledVisitor(self, module, ctx).visit(module.tree)
