"""Observability layer: spans, metrics, exporters, run records.

Three altitudes of visibility over the characterization suite:

* **within a run** — :mod:`repro.obs.spans` collects a hierarchical
  span timeline (profile / phase / stage / runner attempts) on top of
  the flat op trace;
* **across components** — :mod:`repro.obs.metrics` keeps a
  process-wide Prometheus-style instrument registry the dispatcher
  and resilient runner update (rendered by :mod:`repro.obs.prom`);
* **between runs** — :mod:`repro.obs.runrec` appends one durable
  :class:`~repro.obs.runrec.RunRecord` per run into ``runs.jsonl``,
  and :mod:`repro.obs.compare` diffs records to gate regressions.

Two cross-cutting additions serve the serving layer:
:mod:`repro.obs.tracectx` mints picklable request-scoped
:class:`~repro.obs.tracectx.TraceContext` objects that stamp every
span opened in their scope with a ``trace_id`` (causal trees across
queue → batcher → pool → dispatcher), and :mod:`repro.obs.live` is a
bounded ring-buffer event bus with rolling snapshot aggregation,
deterministic tail-based trace sampling, and an SLO burn-rate monitor
— live telemetry that never blocks the hot path.

Exporters (:mod:`repro.obs.chrome`, :mod:`repro.obs.jsonl`,
:mod:`repro.obs.flame`) serialize traces + spans to Chrome Trace Event
JSON, a re-importable JSONL event log, and collapsed-stack flamegraph
input.  Every op event carries the span id (``sid``) of its enclosing
span, so :mod:`repro.obs.kstats` can synthesize Nsight-style kernel
counters per span / per category and :mod:`repro.obs.report` can fold
everything into one self-contained HTML run report.  All collection is
off by default and adds <5% overhead when enabled
(``benchmarks/bench_obs_overhead.py``).
"""

from repro.obs.chrome import (CATEGORY_COLORS, export_chrome,
                              trace_to_chrome, trace_to_chrome_events)
from repro.obs.compare import (DEFAULT_THRESHOLDS, ComparisonReport,
                               MetricDelta, compare_records)
from repro.obs.flame import (FLAME_WEIGHTS, collapsed_stacks,
                             trace_to_flame, write_flame)
from repro.obs.jsonl import (read_jsonl, trace_from_jsonl_lines,
                             trace_to_jsonl, write_jsonl)
from repro.obs.live import (BurnRateMonitor, LiveTelemetry,
                            RingBufferBus, SLOPolicy,
                            SnapshotAggregator, Subscriber,
                            TailSamplingPolicy)
from repro.obs.kstats import (CATEGORY_MIX, KernelStats,
                              archetype_kstats, kstats_by_category,
                              kstats_by_span, render_kstats,
                              synthesize_kstats)
from repro.obs.metrics import (Counter, Gauge, Histogram,
                               MetricsRegistry, RuntimeMetrics,
                               active_runtime, bind_runtime, disable,
                               enable, scoped_runtime)
from repro.obs.prom import render_registry, render_runtime
from repro.obs.report import render_report, write_report
from repro.obs.runrec import (RunRecord, append_record, counters_digest,
                              load_record, load_records,
                              record_from_trace, save_record)
from repro.obs.spans import (SpanCollector, SpanRecord, children_of,
                             current_span, now, render_spans, span,
                             span_roots, tracing_active)
from repro.obs.tracectx import (TraceContext, current_trace_context,
                                mint_batch_trace_id,
                                mint_trace_context, trace_scope)

__all__ = [
    "BurnRateMonitor", "CATEGORY_COLORS", "CATEGORY_MIX",
    "ComparisonReport", "Counter", "DEFAULT_THRESHOLDS",
    "FLAME_WEIGHTS", "Gauge", "Histogram", "KernelStats",
    "LiveTelemetry", "MetricDelta", "MetricsRegistry", "RingBufferBus",
    "RunRecord", "RuntimeMetrics", "SLOPolicy", "SnapshotAggregator",
    "SpanCollector", "SpanRecord", "Subscriber", "TailSamplingPolicy",
    "TraceContext", "active_runtime", "append_record",
    "archetype_kstats", "bind_runtime", "children_of",
    "collapsed_stacks", "compare_records", "counters_digest",
    "current_span", "current_trace_context", "disable", "enable",
    "export_chrome", "kstats_by_category", "kstats_by_span",
    "load_record", "load_records", "mint_batch_trace_id",
    "mint_trace_context", "now", "read_jsonl", "record_from_trace",
    "render_kstats", "render_registry", "render_report",
    "render_runtime", "render_spans", "save_record", "scoped_runtime",
    "span", "span_roots", "synthesize_kstats", "trace_from_jsonl_lines",
    "trace_scope", "trace_to_chrome", "trace_to_chrome_events",
    "trace_to_flame", "trace_to_jsonl", "tracing_active", "write_flame",
    "write_report",
]
