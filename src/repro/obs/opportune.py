"""Trace-derived opportunity analyzer: the compiler's work-list.

Scans one profiled :class:`~repro.core.profiler.Trace` for the three
optimization patterns the compiled execution tier (ROADMAP item 1,
``repro.compile``) is designed to exploit, and emits a ranked report:

* **fusible elementwise chains** — runs of producer-consumer-linked
  elementwise ops inside one span: a fused kernel dispatches once
  instead of ``n`` times, saving ``(n - 1)`` dispatches and the
  intermediate materializations;
* **loop-invariant rebuilds** — the same op executed repeatedly with
  identical input/output shapes inside one (phase, stage), the
  signature of a codebook or lookup table rebuilt every iteration:
  hoisting keeps one dispatch and drops ``(n - 1)`` dispatches *and*
  their kernel work;
* **repeated same-shape allocations** — many ops writing outputs of
  one identical shape: a compiled plan pre-allocates the buffer once
  and reuses it, trading ``n`` allocations for one.

Projected savings are computed from the **frozen dispatch cost
model** (:data:`repro.obs.selfprof.MODELED_COMPONENT_NS`), never from
measured wall time, so the report — ids, ranking, and projected ns —
is a pure function of the op stream: two seeded runs produce
bit-identical reports (asserted in tests), which is what lets
:mod:`repro.obs.history` gate on the numbers and what makes the
report a stable work-list for the plan compiler to consume.
Measured wall time rides along per opportunity as context
(``measured_ns``, excluded from :func:`OpportunityReport.digest`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.profiler import Trace, TraceEvent
from repro.core.taxonomy import OpCategory
from repro.obs.selfprof import MODELED_OVERHEAD_NS_PER_OP
from repro.obs.spans import SpanRecord

__all__ = ["Opportunity", "OpportunityReport", "analyze_trace",
           "fusible_link", "MODELED_ALLOC_NS", "MIN_CHAIN",
           "MIN_REPEATS", "MIN_ALLOC_SITES"]

#: Modeled cost of one numpy output allocation (ns); part of the same
#: frozen cost model as MODELED_COMPONENT_NS.
MODELED_ALLOC_NS = 300

#: An elementwise chain must link at least this many ops to be worth
#: a fused kernel.
MIN_CHAIN = 3

#: An op must repeat at least this many times with identical shapes
#: in one (phase, stage) to be reported as loop-invariant.
MIN_REPEATS = 4

#: A shape must be written by at least this many events to be worth a
#: pre-planned buffer.
MIN_ALLOC_SITES = 8


@dataclass
class Opportunity:
    """One ranked entry of the compiler work-list."""

    kind: str                   #: "fuse_chain" | "hoist_invariant" | "prealloc"
    title: str
    projected_saved_ns: int     #: deterministic (frozen cost model)
    measured_ns: float          #: wall s of the involved events (context)
    eids: Tuple[int, ...]       #: the events the rewrite covers
    span_path: str              #: innermost span path of the first event
    ops: Tuple[str, ...]        #: op names involved, in order
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self, deterministic_only: bool = False) -> Dict[str, object]:
        out: Dict[str, object] = {
            "kind": self.kind,
            "title": self.title,
            "projected_saved_ns": self.projected_saved_ns,
            "eids": list(self.eids),
            "span_path": self.span_path,
            "ops": list(self.ops),
            "detail": dict(sorted(self.detail.items())),
        }
        if not deterministic_only:
            out["measured_ns"] = self.measured_ns
        return out


@dataclass
class OpportunityReport:
    """Ranked opportunities for one trace."""

    workload: str
    opportunities: List[Opportunity]

    @property
    def total_projected_saved_ns(self) -> int:
        return sum(o.projected_saved_ns for o in self.opportunities)

    def by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for opportunity in self.opportunities:
            out[opportunity.kind] = out.get(opportunity.kind, 0) + 1
        return out

    def to_dict(self, deterministic_only: bool = False) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "total_projected_saved_ns": self.total_projected_saved_ns,
            "by_kind": dict(sorted(self.by_kind().items())),
            "opportunities": [o.to_dict(deterministic_only)
                              for o in self.opportunities],
        }

    def digest(self) -> str:
        """sha256 over the deterministic view (measured ns excluded)."""
        canonical = json.dumps(self.to_dict(deterministic_only=True),
                               sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def render(self, top: int = 15) -> str:
        from repro.core.report import render_table  # deferred (cycle)
        rows: List[List[object]] = []
        for opportunity in self.opportunities[:top]:
            rows.append([
                opportunity.kind,
                opportunity.title[:44],
                f"{opportunity.projected_saved_ns / 1e3:.1f}",
                len(opportunity.eids),
                opportunity.span_path[:40] or "-",
            ])
        table = render_table(
            ["kind", "opportunity", "saved us", "events", "span"],
            rows,
            title=f"fusion/hoist/prealloc opportunities: "
                  f"{self.workload or '<trace>'}")
        counts = ", ".join(f"{kind}={count}" for kind, count
                           in sorted(self.by_kind().items())) or "none"
        return (table
                + f"\n{len(self.opportunities)} opportunities ({counts}); "
                f"projected dispatch savings "
                f"{self.total_projected_saved_ns / 1e6:.3f} ms "
                f"(frozen cost model, {MODELED_OVERHEAD_NS_PER_OP} ns "
                f"per eliminated dispatch)")


# ---------------------------------------------------------------------------
# span-path resolution
# ---------------------------------------------------------------------------


def _span_paths(trace: Trace) -> Dict[int, str]:
    """sid -> ``root;...;span`` name path for every collected span."""
    spans = [s for s in trace.spans if isinstance(s, SpanRecord)]
    by_sid = {s.sid: s for s in spans}
    paths: Dict[int, str] = {}

    def path_of(sid: int) -> str:
        if sid in paths:
            return paths[sid]
        record = by_sid[sid]
        names: List[str] = []
        cursor: Optional[SpanRecord] = record
        seen = set()
        while cursor is not None and cursor.sid not in seen:
            seen.add(cursor.sid)
            names.append(cursor.name)
            cursor = by_sid.get(cursor.parent) \
                if cursor.parent is not None else None
        paths[sid] = ";".join(reversed(names))
        return paths[sid]

    for sid in by_sid:
        path_of(sid)
    return paths


def _event_span_path(event: TraceEvent, paths: Dict[int, str]) -> str:
    sid = getattr(event, "sid", None)
    return paths.get(sid, "") if sid is not None else ""


# ---------------------------------------------------------------------------
# detectors
# ---------------------------------------------------------------------------


def fusible_link(prev: Optional[TraceEvent],
                 event: TraceEvent) -> bool:
    """True when ``event`` can extend an elementwise chain after ``prev``.

    The single fusibility predicate shared by this analyzer and the
    plan compiler's fusion pass (``repro.compile.passes``), so the
    opportunity report and the compiled plan always agree on what
    fuses.  ``event`` links when it is elementwise, consumes
    ``prev``'s output directly, sits in the same span / phase / stage,
    and its output shape is *broadcast-compatible* with ``prev``'s
    (identical shapes are the common case, but a fused elementwise
    loop is equally legal across a numpy-broadcast step, e.g.
    ``(4, 1)`` feeding ``(4, 8)``).  ``prev is None`` asks whether
    ``event`` may start a fresh chain.
    """
    if event.category is not OpCategory.ELEMENTWISE:
        return False
    if prev is None:
        return True
    if prev.eid not in event.parents:
        return False
    if getattr(event, "sid", None) != getattr(prev, "sid", None):
        return False
    if event.phase != prev.phase or event.stage != prev.stage:
        return False
    try:
        np.broadcast_shapes(tuple(prev.output_shape),
                            tuple(event.output_shape))
    except ValueError:
        return False
    return True


def _find_fusible_chains(events: Sequence[TraceEvent],
                         paths: Dict[int, str],
                         min_chain: int) -> List[Opportunity]:
    """Producer-consumer runs of elementwise ops inside one span."""
    out: List[Opportunity] = []
    chain: List[TraceEvent] = []

    def flush() -> None:
        if len(chain) >= min_chain:
            saved = (len(chain) - 1) * MODELED_OVERHEAD_NS_PER_OP
            out.append(Opportunity(
                kind="fuse_chain",
                title="fuse " + "+".join(e.name for e in chain[:4])
                      + ("+..." if len(chain) > 4 else ""),
                projected_saved_ns=saved,
                measured_ns=sum(e.wall_time for e in chain) * 1e9,
                eids=tuple(e.eid for e in chain),
                span_path=_event_span_path(chain[0], paths),
                ops=tuple(e.name for e in chain),
                detail={"length": len(chain),
                        "eliminated_dispatches": len(chain) - 1,
                        "intermediate_bytes": sum(
                            e.bytes_written for e in chain[:-1])},
            ))
        chain.clear()

    for event in events:
        if fusible_link(chain[-1] if chain else None, event):
            chain.append(event)
        else:
            flush()
            if fusible_link(None, event):
                chain.append(event)
    flush()
    return out


def _invariant_key(event: TraceEvent) -> Tuple[object, ...]:
    return (event.phase, event.stage, event.name,
            tuple(event.input_shapes), tuple(event.output_shape),
            getattr(event, "sid", None) is None)


def _find_loop_invariants(events: Sequence[TraceEvent],
                          paths: Dict[int, str],
                          min_repeats: int) -> List[Opportunity]:
    """Identically-shaped repeated ops within one (phase, stage)."""
    groups: Dict[Tuple[object, ...], List[TraceEvent]] = {}
    for event in events:
        groups.setdefault(_invariant_key(event), []).append(event)
    out: List[Opportunity] = []
    for key, members in groups.items():
        if len(members) < min_repeats:
            continue
        # identical flops per repeat is the loop-invariant signature —
        # a data-dependent op (different work each iteration) is not
        # hoistable even when its shapes repeat
        if len({e.flops for e in members}) != 1:
            continue
        first = members[0]
        saved = (len(members) - 1) * MODELED_OVERHEAD_NS_PER_OP
        out.append(Opportunity(
            kind="hoist_invariant",
            title=f"hoist {first.name} x{len(members)} out of "
                  f"{first.stage or first.phase or 'untagged'}",
            projected_saved_ns=saved,
            measured_ns=sum(e.wall_time for e in members[1:]) * 1e9,
            eids=tuple(e.eid for e in members),
            span_path=_event_span_path(first, paths),
            ops=(first.name,),
            detail={"repeats": len(members),
                    "phase": first.phase, "stage": first.stage,
                    "output_shape": list(first.output_shape),
                    "flops_per_repeat": first.flops},
        ))
    return out


def _find_repeated_allocations(events: Sequence[TraceEvent],
                               paths: Dict[int, str],
                               min_sites: int) -> List[Opportunity]:
    """Many events writing outputs of one identical shape."""
    groups: Dict[Tuple[Tuple[int, ...], int], List[TraceEvent]] = {}
    for event in events:
        shape = tuple(event.output_shape)
        if not shape or event.bytes_written <= 0:
            continue
        groups.setdefault((shape, event.bytes_written), []).append(event)
    out: List[Opportunity] = []
    for (shape, nbytes), members in groups.items():
        if len(members) < min_sites:
            continue
        saved = (len(members) - 1) * MODELED_ALLOC_NS
        names = sorted({e.name for e in members})
        out.append(Opportunity(
            kind="prealloc",
            title=f"pre-plan {nbytes}B buffer shape "
                  f"{'x'.join(map(str, shape))} ({len(members)} allocs)",
            projected_saved_ns=saved,
            measured_ns=0.0,
            eids=tuple(e.eid for e in members),
            span_path=_event_span_path(members[0], paths),
            ops=tuple(names[:8]),
            detail={"allocations": len(members),
                    "bytes_each": nbytes,
                    "output_shape": list(shape)},
        ))
    return out


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def analyze_trace(trace: Trace,
                  min_chain: int = MIN_CHAIN,
                  min_repeats: int = MIN_REPEATS,
                  min_alloc_sites: int = MIN_ALLOC_SITES
                  ) -> OpportunityReport:
    """Rank the trace's fusion/hoist/prealloc opportunities.

    Deterministic: ranking is by projected savings (frozen cost
    model) with ``(kind, first eid)`` as the tie-break, so equal-value
    opportunities order identically across runs.
    """
    paths = _span_paths(trace)
    events = list(trace.events)
    opportunities = (
        _find_fusible_chains(events, paths, min_chain)
        + _find_loop_invariants(events, paths, min_repeats)
        + _find_repeated_allocations(events, paths, min_alloc_sites))
    opportunities.sort(
        key=lambda o: (-o.projected_saved_ns, o.kind,
                       o.eids[0] if o.eids else -1))
    return OpportunityReport(workload=trace.workload or "",
                             opportunities=opportunities)
