"""Chrome Trace Event Format exporter.

Serializes a :class:`~repro.core.profiler.Trace` — ops *and* the span
tree collected by :mod:`repro.obs.spans` — to the JSON the Chrome
tracing ecosystem understands (load in Perfetto or
``chrome://tracing``):

* thread 0 carries the hierarchical span timeline (profile/phase/
  stage/runner spans nest by containment);
* each phase gets its own op track, named via ``thread_name``
  metadata;
* every op is a complete (``"ph": "X"``) event colored by its
  operator-taxonomy category (``cname``), so the six categories of
  Fig. 3a are visually separable on the timeline.

Timestamps use the measured process-epoch offsets recorded on each
event/span (microseconds, as the format requires).  Traces archived
before the observability layer existed carry no timestamps; those
fall back to a serial per-track layout from their measured wall
times, so old archives still open.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.core.profiler import Trace
from repro.core.taxonomy import OpCategory
from repro.obs.spans import SpanRecord

#: Chrome tracing reserved color names for the six operator categories.
CATEGORY_COLORS: Dict[OpCategory, str] = {
    OpCategory.CONVOLUTION: "thread_state_running",
    OpCategory.MATMUL: "rail_response",
    OpCategory.ELEMENTWISE: "thread_state_runnable",
    OpCategory.TRANSFORM: "rail_animation",
    OpCategory.MOVEMENT: "rail_idle",
    OpCategory.OTHER: "grey",
}

_PID = 1
_SPAN_TID = 0


def _has_timestamps(trace: Trace) -> bool:
    return any(e.t_start > 0.0 for e in trace.events)


def trace_to_chrome_events(trace: Trace,
                           group_by_request: bool = False) -> List[dict]:
    """The ``traceEvents`` list for one trace (metadata first).

    ``group_by_request=True`` lays spans carrying a trace id out on
    one named track per trace (negative tids below the shared span
    track), so a multi-request serving export reads as per-request
    waterfall lanes instead of one interleaved lane.
    """
    tracks: Dict[str, int] = {}
    cursors: Dict[str, float] = {}
    measured = _has_timestamps(trace)
    op_events: List[dict] = []
    for event in trace.events:
        phase = event.phase or "untagged"
        tid = tracks.setdefault(phase, len(tracks) + 1)
        duration_us = event.wall_time * 1e6
        if measured:
            start_us = event.t_start * 1e6
        else:
            start_us = cursors.get(phase, 0.0)
            cursors[phase] = start_us + duration_us
        op_events.append({
            "name": event.name,
            "cat": event.category.value,
            "ph": "X",
            "ts": start_us,
            "dur": duration_us,
            "pid": _PID,
            "tid": tid,
            "cname": CATEGORY_COLORS[event.category],
            "args": {
                "eid": event.eid,
                "sid": event.sid,
                "stage": event.stage,
                "flops": event.flops,
                "bytes": event.total_bytes,
                "shape": list(event.output_shape),
                "sparsity": round(event.output_sparsity, 4),
                "live_bytes": event.live_bytes,
            },
        })

    span_events: List[dict] = []
    span_tracks: Dict[str, int] = {}
    for record in trace.spans:
        if not isinstance(record, SpanRecord):  # pragma: no cover
            continue
        if group_by_request and record.trace_id is not None:
            # one track per trace (i.e. per request / per batch), so
            # multi-request serving timelines read as parallel lanes
            tid = span_tracks.setdefault(
                record.trace_id, -(len(span_tracks) + 1))
        else:
            tid = _SPAN_TID
        args = {"sid": record.sid, "parent": record.parent,
                **{str(k): v for k, v in record.attrs.items()}}
        if record.trace_id is not None:
            args["trace_id"] = record.trace_id
        span_events.append({
            "name": record.name,
            "cat": "span",
            "ph": "X",
            "ts": record.start * 1e6,
            "dur": record.duration * 1e6,
            "pid": _PID,
            "tid": tid,
            "args": args,
        })

    metadata: List[dict] = [
        {"name": "process_name", "ph": "M", "pid": _PID,
         "args": {"name": f"repro:{trace.workload or 'trace'}"}},
        {"name": "thread_name", "ph": "M", "pid": _PID,
         "tid": _SPAN_TID, "args": {"name": "spans"}},
    ]
    metadata.extend(
        {"name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
         "args": {"name": f"trace:{trace_id}"}}
        for trace_id, tid in span_tracks.items())
    metadata.extend(
        {"name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
         "args": {"name": f"ops:{phase}"}}
        for phase, tid in tracks.items())
    return metadata + span_events + op_events


def trace_to_chrome(trace: Trace, group_by_request: bool = False) -> str:
    """Full Chrome Trace Event JSON document for one trace."""
    return json.dumps({
        "traceEvents": trace_to_chrome_events(
            trace, group_by_request=group_by_request),
        "displayTimeUnit": "ms",
        "otherData": {"workload": trace.workload,
                      "events": len(trace.events),
                      "spans": len(trace.spans)},
    })


def export_chrome(trace: Trace, path: str) -> None:
    """Write the Chrome trace JSON for ``trace`` to ``path``."""
    with open(path, "w") as handle:
        handle.write(trace_to_chrome(trace))
