"""Self-profiling ledger: where per-op dispatch time actually goes.

The paper's central finding is that neuro-symbolic workloads lose
time to *framework overhead*, not raw FLOPs.  This suite's dispatcher
(:func:`repro.tensor.dispatch.run_op`) is itself a framework: every
op pays for taxonomy lookup, input splitting, fault-hook
consultation, counter recording, span/observer bookkeeping, and
metrics — on top of the numpy kernel.  Before the compiled execution
tier (ROADMAP item 1) can claim to eliminate that overhead, we have
to be able to *measure* it.

When :data:`ENABLED` is on (off by default; use
:func:`scoped_ledger`), the dispatcher routes through an instrumented
path that brackets each named component with paired
:func:`repro.obs.clock.perf_ns` probes and feeds the integer-ns
deltas into the active :class:`DispatchLedger`.  Probes are placed at
*segment boundaries*, so the component times of one op telescope —
they tile the op's instrumented wall time exactly, by construction
(asserted in ``tests/test_selfprof.py``).  When the flag is off the
dispatcher pays one module-attribute load and branch per op; the
traced events are bit-identical either way (same counters digest).

The ledger rolls up per **operator category** and exposes the
**compiled-tier headroom** estimate: the fraction of projected
workload latency a plan that dispatches once per *fused region*
instead of once per op could reclaim.  Two splits are maintained, in
the same deterministic/measured discipline as
:class:`repro.serve.stats.ServerStats`:

* ``deterministic`` — per-category op counts and the *modeled*
  overhead (op count x :data:`MODELED_COMPONENT_NS`), bit-identical
  across two seeded runs and therefore gateable by
  :mod:`repro.obs.history`;
* ``measured`` — the probe-accumulated ns, machine-dependent,
  reported for context and benched in
  ``benchmarks/bench_dispatch_overhead.py``.
"""

from __future__ import annotations

import hashlib
import json
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "COMPONENTS", "OVERHEAD_COMPONENTS", "MODELED_COMPONENT_NS",
    "MODELED_OVERHEAD_NS_PER_OP", "DispatchLedger", "ENABLED",
    "scoped_ledger", "active_ledger",
]

#: Dispatch components in probe order.  ``kernel`` is the numpy
#: compute itself; everything else is dispatch overhead a compiled
#: plan could amortize or eliminate.
COMPONENTS: Tuple[str, ...] = (
    "taxonomy",   # category_for() registry lookup
    "inputs",     # _split_inputs: coercion, byte counts, parent eids
    "fault",      # active_context + fault-hook consultation
    "kernel",     # the numpy kernel (compute(*arrays) + asarray)
    "counters",   # flops/bytes/sparsity computation + injection apply
    "span",       # eid allocation + innermost-sid lookup
    "record",     # TraceEvent construction + ctx.record
    "observer",   # op-observer notification (repro.fuzz harvest)
    "metrics",    # metrics-registry branch (observe_op when enabled)
)

#: The components a compiled execution tier eliminates (one plan-level
#: dispatch replaces per-op bookkeeping; counters are computed
#: analytically in bulk).  Everything except the kernel itself.
OVERHEAD_COMPONENTS: Tuple[str, ...] = tuple(
    c for c in COMPONENTS if c != "kernel")

#: Canonical per-component dispatch cost model, in nanoseconds per op.
#: Calibrated once from the measured ledger on the reference machine
#: (CPython 3.11, x86-64; see benchmarks/bench_dispatch_overhead.py —
#: measured values are re-reported there on every run so drift in the
#: calibration is visible).  The *model* is deliberately frozen: it
#: makes modeled overhead, headroom, and opportunity projections pure
#: functions of the op stream, so two seeded runs agree bit-for-bit
#: and the history gate can hold a hard line on them.
MODELED_COMPONENT_NS: Dict[str, int] = {
    "taxonomy": 150,
    "inputs": 450,
    "fault": 120,
    "counters": 400,
    "span": 150,
    "record": 600,
    "observer": 60,
    "metrics": 70,
}

#: Modeled dispatch overhead of one eager op, ns (sum of the model).
MODELED_OVERHEAD_NS_PER_OP: int = sum(MODELED_COMPONENT_NS.values())


class DispatchLedger:
    """Per-category attribution of dispatch wall time into components.

    Thread-safe: serve worker threads dispatching concurrently feed
    one ledger.  All accumulators are integer nanoseconds.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: category -> component -> accumulated ns
        self._ns: Dict[str, Dict[str, int]] = {}
        #: category -> op count
        self._ops: Dict[str, int] = {}

    # -- recording (dispatcher-facing) ----------------------------------------
    def record(self, category: str, parts: Dict[str, int]) -> None:
        """Fold one op's component-ns map into the ledger."""
        with self._lock:
            self._ops[category] = self._ops.get(category, 0) + 1
            bucket = self._ns.setdefault(category, {})
            for component, ns in parts.items():
                bucket[component] = bucket.get(component, 0) + ns

    # -- totals ---------------------------------------------------------------
    @property
    def ops(self) -> int:
        with self._lock:
            return sum(self._ops.values())

    def ops_by_category(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._ops)

    def component_ns(self, category: Optional[str] = None) -> Dict[str, int]:
        """Accumulated ns per component (one category, or all)."""
        with self._lock:
            if category is not None:
                return dict(self._ns.get(category, {}))
            out: Dict[str, int] = {}
            for bucket in self._ns.values():
                for component, ns in bucket.items():
                    out[component] = out.get(component, 0) + ns
            return out

    @property
    def total_ns(self) -> int:
        return sum(self.component_ns().values())

    @property
    def kernel_ns(self) -> int:
        return self.component_ns().get("kernel", 0)

    @property
    def overhead_ns(self) -> int:
        totals = self.component_ns()
        return sum(ns for component, ns in totals.items()
                   if component != "kernel")

    @property
    def measured_headroom(self) -> float:
        """Measured fraction of dispatch wall time that is overhead."""
        total = self.total_ns
        return self.overhead_ns / total if total else 0.0

    # -- deterministic model --------------------------------------------------
    def modeled_overhead_ns(self) -> int:
        """Modeled dispatch overhead of the whole run (deterministic)."""
        return self.ops * MODELED_OVERHEAD_NS_PER_OP

    def modeled_headroom(self, projected_kernel_s: float) -> float:
        """Compiled-tier headroom against an analytic kernel latency.

        ``projected_kernel_s`` is the device-model projection of the
        kernel work itself (e.g. ``latency_breakdown(...).total_time``)
        — deterministic per seed — so the returned fraction is too:
        ``overhead / (overhead + kernel)``, the share of end-to-end
        time a compiled plan that eliminates per-op dispatch could
        reclaim on a host whose dispatch costs match the model.
        """
        overhead_s = self.modeled_overhead_ns() * 1e-9
        denominator = overhead_s + max(projected_kernel_s, 0.0)
        return overhead_s / denominator if denominator else 0.0

    # -- serialization --------------------------------------------------------
    def deterministic_dict(self) -> Dict[str, object]:
        """The gateable, bit-identical-across-seeded-runs view."""
        ops = self.ops_by_category()
        return {
            "ops": sum(ops.values()),
            "ops_by_category": {k: ops[k] for k in sorted(ops)},
            "modeled_component_ns": dict(
                sorted(MODELED_COMPONENT_NS.items())),
            "modeled_overhead_ns_per_op": MODELED_OVERHEAD_NS_PER_OP,
            "modeled_overhead_ns": self.modeled_overhead_ns(),
        }

    def measured_dict(self) -> Dict[str, object]:
        """The probe-accumulated, machine-dependent view."""
        with self._lock:
            per_category = {
                category: {c: bucket.get(c, 0) for c in COMPONENTS
                           if c in bucket}
                for category, bucket in sorted(self._ns.items())}
        return {
            "component_ns": {c: ns for c, ns in sorted(
                self.component_ns().items())},
            "per_category_ns": per_category,
            "total_ns": self.total_ns,
            "overhead_ns": self.overhead_ns,
            "kernel_ns": self.kernel_ns,
            "measured_headroom": self.measured_headroom,
        }

    def to_dict(self) -> Dict[str, object]:
        return {"deterministic": self.deterministic_dict(),
                "measured": self.measured_dict()}

    def digest(self) -> str:
        """sha256 over the deterministic view (history/baseline key)."""
        canonical = json.dumps(self.deterministic_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    # -- rendering ------------------------------------------------------------
    def render(self) -> str:
        """Text rollup: per-category component shares + headroom."""
        from repro.core.report import render_table  # deferred (cycle)
        totals = self.component_ns()
        total = max(self.total_ns, 1)
        rows: List[List[object]] = []
        for category in sorted(self._ns):
            bucket = self.component_ns(category)
            cat_total = max(sum(bucket.values()), 1)
            cat_overhead = sum(ns for c, ns in bucket.items()
                               if c != "kernel")
            rows.append([
                category, self._ops.get(category, 0),
                f"{cat_total / 1e6:.3f}",
                f"{100.0 * cat_overhead / cat_total:.1f}%",
                " ".join(f"{c}={100.0 * bucket.get(c, 0) / cat_total:.0f}%"
                         for c in COMPONENTS if bucket.get(c, 0)),
            ])
        table = render_table(
            ["category", "ops", "wall ms", "overhead", "components"],
            rows, title="dispatch-overhead ledger")
        summary = (
            f"\ntotal {total / 1e6:.3f} ms over {self.ops} ops: "
            f"kernel {100.0 * totals.get('kernel', 0) / total:.1f}%, "
            f"overhead {100.0 * self.measured_headroom:.1f}% measured "
            f"({self.modeled_overhead_ns() / 1e6:.3f} ms modeled at "
            f"{MODELED_OVERHEAD_NS_PER_OP} ns/op)")
        return table + summary


# ---------------------------------------------------------------------------
# process-wide enable state (mirrors repro.obs.metrics)
# ---------------------------------------------------------------------------

#: Hot-path flag: the dispatcher reads this once per op and takes the
#: instrumented path only when true.  Do not write directly — use
#: :func:`scoped_ledger`.
ENABLED = False

_state_lock = threading.Lock()
_active: Optional[DispatchLedger] = None


def active_ledger() -> Optional[DispatchLedger]:
    """The installed ledger, or ``None`` when self-profiling is off."""
    return _active


@contextmanager
def scoped_ledger() -> Iterator[DispatchLedger]:
    """Enable self-profiling for a block; yields the fresh ledger.

    Scopes do not nest: the dispatcher feeds exactly one ledger, so a
    nested scope would silently steal the outer scope's ops.
    """
    global ENABLED, _active
    ledger = DispatchLedger()
    with _state_lock:
        if _active is not None:
            raise RuntimeError("self-profiling scopes do not nest")
        _active = ledger
        ENABLED = True
    try:
        yield ledger
    finally:
        with _state_lock:
            _active = None
            ENABLED = False
