"""Request-scoped trace context: the cross-boundary tracing identity.

A :class:`TraceContext` names one causal trace — normally one serving
request — and travels *with* the work instead of living in any
process-local registry.  It is deliberately **picklable by
construction** (plain strings, ints, and tuples; lint check RL104
guards the closure) because it is the wire format a request carries
across the thread boundary today and the process boundary of the
ROADMAP item-2 worker fleet tomorrow:

* ``trace_id`` — deterministic hex identity, minted once at admission
  (:func:`mint_trace_context`) as a pure function of the request's
  ``(rid, workload, seed)``, so two seeded runs of the same schedule
  mint identical ids and every downstream artifact (sampled trace
  sets, exported JSONL, waterfall reports) is reproducible;
* ``parent_sid`` — optional span id of the caller's open span, linking
  a remote continuation back into the caller's tree;
* ``baggage`` — sorted ``(key, value)`` string pairs for small
  propagated annotations (request ids of a batch, rejection class).

Propagation is ambient: :func:`trace_scope` installs a context on a
thread-local stack and every span opened while it is active
(:func:`repro.obs.spans.push_span`) is stamped with its ``trace_id``,
so the resilient runner's ``run:*`` / ``attempt#N`` spans and the
profiled workload's ``phase:*`` spans all become linkable to the
serving request that caused them — without any of those layers
knowing the context exists.

The thread-local stack is private: ``push_trace_context`` /
``pop_trace_context`` may only be called from ``__enter__`` /
``__exit__`` pairs or ``@contextmanager`` functions (lint check
RL005), because an unbalanced stack mislabels every span that
follows.
"""

from __future__ import annotations

import hashlib
import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "TraceContext", "current_trace_context", "mint_batch_trace_id",
    "mint_trace_context", "trace_scope",
]


@dataclass(frozen=True)
class TraceContext:
    """Serializable identity of one causal trace (one request).

    Every field is a plain value type so instances pickle, JSON-encode
    (via :meth:`to_dict`), and hash without touching process-local
    state — the precondition for crossing thread and process
    boundaries (enforced statically by lint check RL104 on the serve
    request path).
    """

    trace_id: str
    parent_sid: Optional[int] = None
    baggage: Tuple[Tuple[str, str], ...] = ()

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """Baggage lookup."""
        for name, value in self.baggage:
            if name == key:
                return value
        return default

    def with_baggage(self, **items: str) -> "TraceContext":
        """A copy with ``items`` merged into the (sorted) baggage."""
        merged = dict(self.baggage)
        merged.update({key: str(value) for key, value in items.items()})
        return replace(self, baggage=tuple(sorted(merged.items())))

    def with_parent(self, parent_sid: Optional[int]) -> "TraceContext":
        """A copy re-rooted under span ``parent_sid``."""
        return replace(self, parent_sid=parent_sid)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"trace_id": self.trace_id}
        if self.parent_sid is not None:
            out["parent_sid"] = self.parent_sid
        if self.baggage:
            out["baggage"] = {key: value for key, value in self.baggage}
        return out

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "TraceContext":
        baggage = raw.get("baggage") or {}
        return cls(
            trace_id=str(raw["trace_id"]),
            parent_sid=(None if raw.get("parent_sid") is None
                        else int(raw["parent_sid"])),  # type: ignore[arg-type]
            baggage=tuple(sorted((str(k), str(v))
                          for k, v in baggage.items())),  # type: ignore[union-attr]
        )


def _hex_id(seed_text: str) -> str:
    """16-hex-char deterministic id (blake2s; no global RNG — RL004)."""
    return hashlib.blake2s(seed_text.encode(), digest_size=8).hexdigest()


def mint_trace_context(rid: int, workload: str,
                       seed: int = 0) -> TraceContext:
    """Mint the admission-time context for one request.

    A pure function of the request identity, so replaying a seeded
    schedule mints bit-identical trace ids — the property the
    tail-sampling determinism check and the trace-tree fuzz invariants
    rely on.
    """
    return TraceContext(
        trace_id=_hex_id(f"req:{rid}:{workload}:{seed}"),
        baggage=(("rid", str(rid)), ("workload", workload)))


def mint_batch_trace_id(member_trace_ids: Tuple[str, ...]) -> str:
    """Deterministic trace id for a batch execution shared by members."""
    return _hex_id("batch:" + ",".join(member_trace_ids))


_state = threading.local()


def _trace_stack() -> List[TraceContext]:
    if not hasattr(_state, "contexts"):
        _state.contexts = []
    return _state.contexts


def current_trace_context() -> Optional[TraceContext]:
    """The innermost active context on this thread, or ``None``."""
    stack = _trace_stack()
    return stack[-1] if stack else None


def push_trace_context(ctx: TraceContext) -> None:
    """Enter ``ctx`` on this thread (internal; use :func:`trace_scope`)."""
    _trace_stack().append(ctx)


def pop_trace_context(ctx: TraceContext) -> None:
    """Leave ``ctx``; it must be the innermost active context."""
    stack = _trace_stack()
    if not stack or stack[-1] is not ctx:  # pragma: no cover - misuse
        raise RuntimeError("trace contexts exited out of order")
    stack.pop()


@contextmanager
def trace_scope(ctx: TraceContext) -> Iterator[TraceContext]:
    """Make ``ctx`` the ambient trace context for the block.

    Every span opened inside the block (on this thread) is stamped
    with ``ctx.trace_id`` by :func:`repro.obs.spans.push_span`.
    """
    push_trace_context(ctx)
    try:
        yield ctx
    finally:
        pop_trace_context(ctx)
