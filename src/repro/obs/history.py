"""Longitudinal perf history: trend the suite's own performance.

The BENCH trajectory problem: every PR lands with fresh benchmark
numbers, but nothing remembers the *previous* numbers, so performance
drifts silently between commits.  This module is the durable store
and the gate:

* a :class:`HistoryEntry` is one structured snapshot — dispatch
  overhead ledger metrics, compiled-tier headroom, opportunity-report
  projections, plus whatever the structured benchmark results under
  ``benchmarks/results/*.json`` report — appended to a committed
  ``benchmarks/history.jsonl``;
* :func:`detect_regressions` diffs the newest entry against a robust
  baseline (median of the previous window) under per-metric
  direction-aware thresholds — ``repro obs history gate`` exits
  :data:`EXIT_TREND_REGRESSION` when any gated metric regresses;
* :func:`detect_change_points` runs deterministic binary segmentation
  over each metric's full series, so a slow drift that never trips a
  single-step threshold still surfaces in ``history show`` and in the
  trend section of the HTML run report (:mod:`repro.obs.report`).

Gated metrics are **deterministic by construction** (modeled ledger
overhead, analytic headroom, opportunity projections — pure functions
of the op stream and the frozen cost model), so the gate holds a hard
line without machine noise.  Measured metrics (benchmark overheads,
serve throughput) are recorded and trended but ungated by default;
pass ``--threshold`` to gate them on a dedicated perf host.
"""

from __future__ import annotations

import hashlib
import json
import statistics
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "HISTORY_VERSION", "DEFAULT_HISTORY", "EXIT_TREND_REGRESSION",
    "HistoryEntry", "append_entry", "load_history",
    "MetricPolicy", "DEFAULT_POLICIES", "policy_for",
    "TrendRegression", "detect_regressions", "detect_change_points",
    "entry_from_sources", "render_history", "sparkline_svg",
    "metric_series",
]

#: bump when the entry layout changes
HISTORY_VERSION = 1

#: the committed trajectory database
DEFAULT_HISTORY = "benchmarks/history.jsonl"

#: ``repro obs history gate`` exit code on a trend regression
#: (2/3 = faults, 4 = compare, 5 = fuzz divergence)
EXIT_TREND_REGRESSION = 6

#: baseline window: the candidate is compared against the median of
#: up to this many immediately preceding entries
BASELINE_WINDOW = 5


@dataclass
class HistoryEntry:
    """One structured perf snapshot on the longitudinal trajectory."""

    created: str = ""
    git_sha: str = ""
    label: str = "local"
    metrics: Dict[str, float] = field(default_factory=dict)
    #: digests and provenance (never compared numerically)
    meta: Dict[str, object] = field(default_factory=dict)
    version: int = HISTORY_VERSION

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "created": self.created,
            "git_sha": self.git_sha,
            "label": self.label,
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
            "meta": {k: self.meta[k] for k in sorted(self.meta)},
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "HistoryEntry":
        return cls(
            created=str(raw.get("created", "")),
            git_sha=str(raw.get("git_sha", "")),
            label=str(raw.get("label", "local")),
            metrics={str(k): float(v) for k, v in
                     dict(raw.get("metrics", {})).items()},  # type: ignore[arg-type]
            meta=dict(raw.get("meta", {})),  # type: ignore[arg-type]
            version=int(raw.get("version", HISTORY_VERSION)),  # type: ignore[arg-type]
        )

    def digest(self) -> str:
        """sha256 over metrics+meta (identity excludes created/sha)."""
        canonical = json.dumps(
            {"metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
             "meta": {k: self.meta[k] for k in sorted(self.meta)}},
            sort_keys=True, separators=(",", ":"), default=str)
        return hashlib.sha256(canonical.encode()).hexdigest()


def append_entry(entry: HistoryEntry,
                 path: str = DEFAULT_HISTORY) -> None:
    """Append one entry to the history database at ``path``."""
    with open(path, "a") as handle:
        handle.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")


def load_history(path: str = DEFAULT_HISTORY) -> List[HistoryEntry]:
    """All entries, oldest first."""
    entries: List[HistoryEntry] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(HistoryEntry.from_dict(json.loads(line)))
    return entries


def metric_series(entries: Sequence[HistoryEntry],
                  metric: str) -> List[float]:
    """The metric's values across entries (entries missing it skipped)."""
    return [e.metrics[metric] for e in entries if metric in e.metrics]


# ---------------------------------------------------------------------------
# per-metric gating policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MetricPolicy:
    """How one metric (or metric-name prefix) is gated.

    ``threshold`` is the relative change that counts as a regression
    in the *worse* direction (``None`` = trend only, never gate);
    ``higher_is_worse`` orients it.
    """

    threshold: Optional[float]
    higher_is_worse: bool = True


#: longest-prefix-match policy table.  Deterministic dispatch/headroom
#: /opportunity metrics gate hard (any growth beyond 5% of modeled
#: overhead is a real dispatcher change, not noise); measured bench
#: metrics trend but do not gate by default.
DEFAULT_POLICIES: Dict[str, MetricPolicy] = {
    "dispatch.": MetricPolicy(threshold=0.05, higher_is_worse=True),
    "headroom.": MetricPolicy(threshold=0.05, higher_is_worse=True),
    "opportunities.": MetricPolicy(threshold=None),
    "bench.": MetricPolicy(threshold=None),
    "serve.": MetricPolicy(threshold=None, higher_is_worse=False),
    # compiled-tier facts are deterministic plan properties; a drop in
    # the modeled dispatch reduction (or in captured step counts) is a
    # real compiler/capture change, not noise
    "compile.": MetricPolicy(threshold=0.05, higher_is_worse=False),
}


def policy_for(metric: str,
               overrides: Optional[Dict[str, MetricPolicy]] = None
               ) -> MetricPolicy:
    """Longest-prefix-match lookup (overrides shadow the defaults)."""
    table = dict(DEFAULT_POLICIES)
    if overrides:
        table.update(overrides)
    best: Optional[Tuple[str, MetricPolicy]] = None
    for prefix, policy in table.items():
        if metric == prefix or metric.startswith(prefix):
            if best is None or len(prefix) > len(best[0]):
                best = (prefix, policy)
    return best[1] if best else MetricPolicy(threshold=None)


def parse_policy_overrides(specs: Sequence[str]
                           ) -> Dict[str, MetricPolicy]:
    """``metric=0.1`` / ``metric=-0.1`` (negative: lower is worse) /
    ``metric=off`` CLI overrides."""
    out: Dict[str, MetricPolicy] = {}
    for spec in specs:
        if "=" not in spec:
            raise ValueError(
                f"bad threshold {spec!r}; expected METRIC=FRACTION "
                "(negative fraction: lower is worse) or METRIC=off")
        metric, _, value = spec.partition("=")
        if value.strip().lower() in ("off", "none"):
            out[metric.strip()] = MetricPolicy(threshold=None)
            continue
        fraction = float(value)
        out[metric.strip()] = MetricPolicy(
            threshold=abs(fraction), higher_is_worse=fraction >= 0)
    return out


# ---------------------------------------------------------------------------
# regression + change-point detection
# ---------------------------------------------------------------------------


@dataclass
class TrendRegression:
    """One gated metric that moved the wrong way."""

    metric: str
    baseline: float
    candidate: float
    rel_change: float       #: signed, positive = metric went up
    threshold: float
    higher_is_worse: bool

    def render(self) -> str:
        arrow = "^" if self.rel_change >= 0 else "v"
        return (f"REGRESSION {self.metric}: {self.baseline:.6g} -> "
                f"{self.candidate:.6g} ({arrow}{abs(self.rel_change):.1%}"
                f" vs +/-{self.threshold:.0%} budget, "
                f"{'higher' if self.higher_is_worse else 'lower'}"
                f"-is-worse)")


def _rel_change(baseline: float, candidate: float) -> float:
    if baseline == 0.0:
        return 0.0 if candidate == 0.0 else float("inf")
    return (candidate - baseline) / abs(baseline)


def detect_regressions(entries: Sequence[HistoryEntry],
                       overrides: Optional[Dict[str, MetricPolicy]] = None,
                       window: int = BASELINE_WINDOW
                       ) -> List[TrendRegression]:
    """Gate the newest entry against the preceding window's median.

    The median baseline makes the gate robust to one outlier entry:
    a single bad historical record cannot mask (or fake) a
    regression.  Metrics absent from the history (first appearance)
    pass — there is nothing to regress against.
    """
    if len(entries) < 2:
        return []
    candidate = entries[-1]
    regressions: List[TrendRegression] = []
    for metric in sorted(candidate.metrics):
        policy = policy_for(metric, overrides)
        if policy.threshold is None:
            continue
        previous = metric_series(entries[:-1], metric)[-window:]
        if not previous:
            continue
        baseline = statistics.median(previous)
        change = _rel_change(baseline, candidate.metrics[metric])
        worse = change > policy.threshold if policy.higher_is_worse \
            else change < -policy.threshold
        if worse:
            regressions.append(TrendRegression(
                metric=metric, baseline=baseline,
                candidate=candidate.metrics[metric],
                rel_change=(0.0 if change == float("inf") else change),
                threshold=policy.threshold,
                higher_is_worse=policy.higher_is_worse))
    return regressions


def detect_change_points(values: Sequence[float],
                         min_rel_shift: float = 0.05,
                         min_segment: int = 2) -> List[int]:
    """Deterministic binary segmentation over one metric series.

    Returns sorted indices ``i`` such that the mean of
    ``values[i:]`` differs from the mean of ``values[:i]`` by more
    than ``min_rel_shift`` (relative to the left mean) at the
    best-splitting point of a segment; recurses into both halves.
    Pure arithmetic on the input — same series, same split points.
    """
    points: List[int] = []

    def segment(lo: int, hi: int) -> None:
        n = hi - lo
        if n < 2 * min_segment:
            return
        best_split, best_shift = -1, 0.0
        for split in range(lo + min_segment, hi - min_segment + 1):
            left = values[lo:split]
            right = values[split:hi]
            left_mean = sum(left) / len(left)
            right_mean = sum(right) / len(right)
            denominator = max(abs(left_mean), 1e-12)
            shift = abs(right_mean - left_mean) / denominator
            if shift > best_shift:
                best_split, best_shift = split, shift
        if best_split >= 0 and best_shift > min_rel_shift:
            points.append(best_split)
            segment(lo, best_split)
            segment(best_split, hi)

    segment(0, len(values))
    return sorted(points)


# ---------------------------------------------------------------------------
# entry construction
# ---------------------------------------------------------------------------

#: ``benchmarks/results/<name>.json`` metrics harvested into entries:
#: experiment name -> (metric name, path into the document's meta)
_RESULT_METRICS: Tuple[Tuple[str, str, Tuple[str, ...]], ...] = (
    ("obs_overhead", "bench.obs_overhead.nvsa",
     ("overheads", "nvsa")),
    ("obs_overhead", "bench.obs_overhead.prae",
     ("overheads", "prae")),
    ("resilience_overhead", "bench.resilience_overhead.nvsa",
     ("overheads", "nvsa")),
    ("resilience_overhead", "bench.resilience_overhead.prae",
     ("overheads", "prae")),
    ("serve_telemetry_overhead", "bench.serve_telemetry_overhead",
     ("overhead",)),
    ("serve_throughput", "serve.throughput_rps",
     ("throughput_rps",)),
    ("dispatch_overhead", "bench.dispatch_on_path_overhead",
     ("on_path_overheads", "nvsa")),
    ("compile_speedup", "bench.compile_reduction.nvsa",
     ("reductions", "nvsa")),
    ("compile_speedup", "bench.compile_reduction.prae",
     ("reductions", "prae")),
)


def _dig(doc: Dict[str, object], path: Tuple[str, ...]) -> Optional[float]:
    cursor: object = doc
    for key in path:
        if not isinstance(cursor, dict) or key not in cursor:
            return None
        cursor = cursor[key]
    try:
        return float(cursor)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


def ingest_results(results_dir: str) -> Dict[str, float]:
    """Harvest known metrics from ``benchmarks/results/*.json``."""
    out: Dict[str, float] = {}
    root = Path(results_dir)
    for experiment, metric, path in _RESULT_METRICS:
        doc_path = root / f"{experiment}.json"
        if not doc_path.exists():
            continue
        try:
            doc = json.loads(doc_path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        value = _dig(doc.get("meta", {}), path)
        if value is not None:
            out[metric] = value
    return out


def entry_from_sources(workloads: Sequence[str] = ("nvsa", "prae"),
                       results_dir: Optional[str] = None,
                       device: Optional[object] = None,
                       seed: int = 0,
                       label: str = "local",
                       created: Optional[str] = None,
                       sha: Optional[str] = None) -> HistoryEntry:
    """Profile ``workloads`` under the self-profiling ledger and build
    one history entry.

    All gated metrics are deterministic: modeled ledger overhead,
    analytic compiled-tier headroom (modeled overhead vs the device
    model's projected latency), and opportunity-report projections.
    Pass ``created=""``/``sha=""`` to build identity-stable entries
    (tests assert two seeded builds are bit-identical).
    """
    from repro.compile.capture import PlanCapturer
    from repro.compile.passes import plan_from_trace
    from repro.core.analysis import latency_breakdown
    from repro.hwsim.devices import RTX_2080TI
    from repro.obs import selfprof
    from repro.obs.opportune import analyze_trace
    from repro.obs.runrec import counters_digest, git_sha
    from repro.tensor.context import op_observer
    device = device if device is not None else RTX_2080TI
    metrics: Dict[str, float] = {}
    meta: Dict[str, object] = {"seed": seed,
                               "device": getattr(device, "name", "")}
    digests: Dict[str, Dict[str, str]] = {}
    from repro.workloads import create
    for name in workloads:
        # the plan capturer rides the same ledgered run: observers see
        # every dispatched op, so one profile yields ledger + plan
        capturer = PlanCapturer()
        with selfprof.scoped_ledger() as ledger:
            with op_observer(capturer):
                trace = create(name, seed=seed).profile()
        projected = latency_breakdown(trace, device).total_time
        report = analyze_trace(trace)
        plan = plan_from_trace(trace, capturer, report=report,
                               workload=name)
        metrics[f"dispatch.{name}.ops"] = float(ledger.ops)
        metrics[f"dispatch.{name}.modeled_overhead_ns"] = float(
            ledger.modeled_overhead_ns())
        metrics[f"headroom.{name}.pct"] = round(
            100.0 * ledger.modeled_headroom(projected), 6)
        metrics[f"opportunities.{name}.count"] = float(
            len(report.opportunities))
        metrics[f"opportunities.{name}.projected_saved_ns"] = float(
            report.total_projected_saved_ns)
        metrics[f"compile.{name}.steps"] = float(len(plan.steps))
        metrics[f"compile.{name}.groups"] = float(len(plan.groups))
        metrics[f"compile.{name}.modeled_reduction_x"] = round(
            plan.modeled_reduction(), 6)
        digests[name] = {
            "ledger": ledger.digest(),
            "opportunities": report.digest(),
            "counters": counters_digest(trace),
            "plan": plan.digest(),
        }
    meta["digests"] = digests
    if results_dir is not None:
        metrics.update(ingest_results(results_dir))
    return HistoryEntry(
        created=(datetime.now(timezone.utc).isoformat(timespec="seconds")
                 if created is None else created),
        git_sha=git_sha() if sha is None else sha,
        label=label, metrics=metrics, meta=meta)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

_SPARK_CHARS = " .:-=+*#%@"


def _ascii_spark(values: Sequence[float]) -> str:
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return "-" * len(values)
    scale = (len(_SPARK_CHARS) - 1) / (hi - lo)
    return "".join(_SPARK_CHARS[int(round((v - lo) * scale))]
                   for v in values)


def render_history(entries: Sequence[HistoryEntry],
                   metrics: Optional[Sequence[str]] = None) -> str:
    """Text trend table: per metric, series sparkline + change points."""
    from repro.core.report import render_table  # deferred (cycle)
    if not entries:
        return "history: empty"
    names = sorted(metrics if metrics is not None
                   else {m for e in entries for m in e.metrics})
    rows: List[List[object]] = []
    for metric in names:
        series = metric_series(entries, metric)
        if not series:
            continue
        policy = policy_for(metric)
        shifts = detect_change_points(series)
        delta = _rel_change(series[-2], series[-1]) \
            if len(series) >= 2 else 0.0
        rows.append([
            metric, len(series), f"{series[-1]:.6g}",
            (f"{delta:+.1%}" if abs(delta) != float("inf") else "new"),
            _ascii_spark(series[-24:]),
            ",".join(map(str, shifts)) or "-",
            ("-" if policy.threshold is None
             else f"{policy.threshold:.0%}"),
        ])
    header = (f"{len(entries)} entries "
              f"({entries[0].created or '?'} .. "
              f"{entries[-1].created or '?'})")
    return render_table(
        ["metric", "n", "last", "delta", "trend", "shifts@", "gate"],
        rows, title=f"perf history — {header}")


def sparkline_svg(values: Sequence[float], width: int = 140,
                  height: int = 28,
                  change_points: Sequence[int] = ()) -> str:
    """Inline-SVG sparkline (no external refs; report-embeddable)."""
    if len(values) < 2:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    margin = 2.0
    step = (width - 2 * margin) / (len(values) - 1)

    def x(index: int) -> float:
        return margin + index * step

    def y(value: float) -> float:
        return height - margin - (value - lo) / span \
            * (height - 2 * margin)

    points = " ".join(f"{x(i):.1f},{y(v):.1f}"
                      for i, v in enumerate(values))
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" aria-label="trend">',
        f'<polyline points="{points}" fill="none" stroke="#4e79a7" '
        'stroke-width="1.5"/>',
    ]
    for split in change_points:
        if 0 < split < len(values):
            parts.append(
                f'<line x1="{x(split):.1f}" y1="{margin}" '
                f'x2="{x(split):.1f}" y2="{height - margin}" '
                'stroke="#e15759" stroke-dasharray="2 2"/>')
    parts.append(
        f'<circle cx="{x(len(values) - 1):.1f}" '
        f'cy="{y(values[-1]):.1f}" r="2.2" fill="#e15759"/>')
    parts.append("</svg>")
    return "".join(parts)
