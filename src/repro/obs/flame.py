"""Collapsed-stack flamegraph export of attributed traces.

Writes the ``frame;frame;frame <weight>`` line format consumed by
Brendan Gregg's ``flamegraph.pl`` and by speedscope: one line per
distinct stack, one integer weight per line.  The "stack" of an op is
its span chain — every :class:`~repro.core.profiler.TraceEvent`
carries the span id (``sid``) of the innermost span open at dispatch,
and the trace's collected :class:`~repro.obs.spans.SpanRecord` list
supplies the parent links, so the flat op list folds back into the
hierarchical timeline (``profile:nvsa → phase:neural →
stage:rule_detection → matmul``).

Because the span tree is structural (not sampled), the *weight* is a
choice of lens rather than a sample count:

* ``wall`` — measured host microseconds (the default; what a sampling
  profiler would approximate),
* ``latency`` — modeled device microseconds from
  :func:`repro.hwsim.latency.project_event` (where would time go on
  the target accelerator),
* ``flops`` — floating-point work,
* ``bytes`` — memory traffic (read + written).

Events from pre-attribution archives (``sid is None``) fall back to a
synthetic ``workload;phase;stage`` chain so old traces still render.
Output is deterministic for a fixed trace: stacks are accumulated
exactly and emitted in sorted order.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.profiler import Trace, TraceEvent
from repro.hwsim.device import DeviceSpec
from repro.hwsim.devices import RTX_2080TI
from repro.hwsim.latency import project_event
from repro.obs.spans import SpanRecord

#: weight lenses accepted by :func:`collapsed_stacks` (CLI choices)
FLAME_WEIGHTS = ("wall", "latency", "flops", "bytes")

#: scale seconds to integer microseconds for the time-based lenses
_US = 1e6


def _frame(name: str) -> str:
    """Sanitize one frame label for the collapsed format.

    ``;`` separates frames and the final space separates the weight,
    so neither may appear inside a frame name.
    """
    return name.replace(";", ":").replace(" ", "_") or "<anon>"


def _span_chain(sid: Optional[int],
                by_sid: Dict[int, SpanRecord]) -> Optional[List[str]]:
    """Frame list root->``sid``, or ``None`` when the chain is unknown."""
    if sid is None or sid not in by_sid:
        return None
    chain: List[str] = []
    seen = set()
    cursor: Optional[int] = sid
    while cursor is not None and cursor in by_sid and cursor not in seen:
        seen.add(cursor)
        record = by_sid[cursor]
        chain.append(_frame(record.name))
        cursor = record.parent
    chain.reverse()
    return chain


def _fallback_chain(trace: Trace, event: TraceEvent) -> List[str]:
    """Synthetic chain for unattributed events (pre-PR4 archives)."""
    chain = [_frame(trace.workload or "<untraced>")]
    if event.phase:
        chain.append(_frame(f"phase:{event.phase}"))
    if event.stage:
        chain.append(_frame(f"stage:{event.stage}"))
    return chain


def _event_weight(event: TraceEvent, weight: str,
                  device: DeviceSpec) -> float:
    if weight == "wall":
        return event.wall_time * _US
    if weight == "latency":
        return project_event(event, device).total * _US
    if weight == "flops":
        return event.flops
    if weight == "bytes":
        return float(event.total_bytes)
    raise ValueError(
        f"unknown flame weight {weight!r} (choose from {FLAME_WEIGHTS})")


def collapsed_stacks(trace: Trace, weight: str = "wall",
                     device: DeviceSpec = RTX_2080TI) -> Dict[str, int]:
    """Accumulate ``stack -> integer weight`` for ``trace``.

    Weights are summed exactly per stack and rounded once at the end;
    stacks that round to zero are dropped (flamegraph.pl treats zero
    as absent anyway).
    """
    by_sid = {record.sid: record for record in trace.spans
              if isinstance(record, SpanRecord)}
    acc: Dict[str, float] = {}
    for event in trace.events:
        chain = _span_chain(event.sid, by_sid)
        if chain is None:
            chain = _fallback_chain(trace, event)
        chain.append(_frame(event.name))
        stack = ";".join(chain)
        acc[stack] = acc.get(stack, 0.0) + _event_weight(
            event, weight, device)
    out: Dict[str, int] = {}
    for stack, value in acc.items():
        rounded = int(round(value))
        if rounded > 0:
            out[stack] = rounded
    return out


def trace_to_flame(trace: Trace, weight: str = "wall",
                   device: DeviceSpec = RTX_2080TI) -> str:
    """The collapsed-stack file as one string (sorted, trailing NL)."""
    stacks = collapsed_stacks(trace, weight=weight, device=device)
    lines = [f"{stack} {value}"
             for stack, value in sorted(stacks.items())]
    return "\n".join(lines) + ("\n" if lines else "")


def write_flame(trace: Trace, path: str, weight: str = "wall",
                device: DeviceSpec = RTX_2080TI) -> None:
    """Write the collapsed-stack flamegraph input file to ``path``."""
    with open(path, "w") as handle:
        handle.write(trace_to_flame(trace, weight=weight, device=device))
