"""Self-contained single-file HTML run report.

``render_report`` turns one profiled :class:`~repro.core.profiler.Trace`
into a single HTML document with **zero external references** — no
scripts, stylesheets, fonts, or images are fetched; the roofline chart
is inline SVG and the styling is one embedded ``<style>`` block — so
the file can be archived next to the trace, attached to a CI run, or
mailed around, and will render identically forever.

Sections (each an anchor-linkable ``<section>``):

1. **header** — workload, device, headline counters;
2. **span timeline** — the collected span tree laid out on the shared
   monotonic timeline (percent-positioned, so it scales to any width);
2b. **request waterfall** — only when the trace carries spans with
   trace ids (a serving export): one lane per ``serve:request`` tree,
   its lifecycle phases (queue wait / dispatch / execute) stacked as
   a per-request waterfall;
3. **kernel stats** — the generalized Table IV matrices from
   :mod:`repro.obs.kstats`, per operator category and per span;
4. **roofline** — the device roof with per-phase and per-span points
   (Fig. 3c), log-log, as inline SVG;
5. **sparsity** — per-stage output-sparsity statistics (Fig. 5 lens);
6. **baseline diff** — optional: the
   :func:`repro.obs.compare.compare_records` table against a stored
   :class:`~repro.obs.runrec.RunRecord`.

With ``baseline=None`` the document is deterministic for a fixed
trace (no timestamps, no hostnames), so report bytes can be diffed
across commits like any other artifact.
"""

from __future__ import annotations

import math
from html import escape
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.profiler import Trace
from repro.core.report import format_bytes, format_time
from repro.core.sparsity import stage_sparsity
from repro.hwsim.device import DeviceSpec
from repro.hwsim.devices import RTX_2080TI
from repro.hwsim.roofline import (RooflinePoint, roofline_curve,
                                  roofline_points)
from repro.obs.kstats import (KernelStats, kstats_by_category,
                              kstats_by_span)
from repro.obs.runrec import RunRecord, record_from_trace
from repro.obs.spans import SpanRecord

#: colors cycled over span names / roofline points (hex, no external
#: palette dependency)
_PALETTE = ("#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1",
            "#76b7b2", "#edc948", "#9c755f")

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial,
       sans-serif; margin: 2em auto; max-width: 62em; color: #1a1a2e;
       line-height: 1.45; }
h1 { font-size: 1.5em; border-bottom: 2px solid #4e79a7; }
h2 { font-size: 1.15em; margin-top: 2em; }
table { border-collapse: collapse; font-size: 0.85em; }
th, td { border: 1px solid #c8c8d0; padding: 0.25em 0.6em;
         text-align: right; }
th:first-child, td:first-child { text-align: left; }
thead th { background: #eef1f6; }
.timeline { position: relative; background: #f7f8fa;
            border: 1px solid #c8c8d0; }
.span { position: absolute; height: 18px; border-radius: 3px;
        font-size: 11px; color: #fff; overflow: hidden;
        white-space: nowrap; padding-left: 3px; box-sizing: border-box; }
.waterfall { background: #f7f8fa; border: 1px solid #c8c8d0; }
.wf-row { display: flex; align-items: center; height: 20px; }
.wf-label { flex: 0 0 16em; font-size: 11px; padding-left: 4px;
            overflow: hidden; white-space: nowrap; }
.wf-lane { flex: 1; position: relative; height: 14px;
           border-left: 1px solid #c8c8d0; }
.wf-seg { position: absolute; top: 1px; height: 12px;
          border-radius: 2px; }
.kind-neural { color: #4e79a7; font-weight: 600; }
.kind-symbolic { color: #e15759; font-weight: 600; }
.kind-mixed { color: #b07aa1; font-weight: 600; }
pre { background: #f7f8fa; border: 1px solid #c8c8d0;
      padding: 0.8em; overflow-x: auto; font-size: 0.8em; }
.meta { color: #5a5a6e; font-size: 0.9em; }
svg text { font-family: inherit; }
"""


def _color(name: str) -> str:
    """Stable palette pick (hash-free: deterministic across runs)."""
    return _PALETTE[sum(ord(ch) for ch in name) % len(_PALETTE)]


# ---------------------------------------------------------------------------
# section renderers


def _section_header(trace: Trace, device: DeviceSpec) -> str:
    summary = trace.summary()
    rows = [
        ("events", f"{summary['events']}"),
        ("total FLOPs", f"{trace.total_flops:.4g}"),
        ("total traffic", format_bytes(trace.total_bytes)),
        ("measured wall time", format_time(trace.total_wall_time)),
        ("peak live bytes", format_bytes(trace.peak_live_bytes)),
        ("phases", ", ".join(p or "untagged"
                             for p in trace.phases()) or "-"),
        ("spans collected", f"{len(trace.spans)}"),
    ]
    cells = "".join(f"<tr><td>{escape(k)}</td><td>{escape(v)}</td></tr>"
                    for k, v in rows)
    return (f"<h1>run report: {escape(trace.workload or '<trace>')}"
            f" <span class=meta>on {escape(device.name)}</span></h1>"
            f"<table><tbody>{cells}</tbody></table>")


def _span_depths(spans: Sequence[SpanRecord]) -> Dict[int, int]:
    by_sid = {record.sid: record for record in spans}
    depths: Dict[int, int] = {}
    for record in spans:
        depth = 0
        cursor = record.parent
        seen = set()
        while cursor is not None and cursor in by_sid \
                and cursor not in seen:
            seen.add(cursor)
            depth += 1
            cursor = by_sid[cursor].parent
        depths[record.sid] = depth
    return depths


def _section_timeline(trace: Trace) -> str:
    spans = [record for record in trace.spans
             if isinstance(record, SpanRecord)]
    if not spans:
        return ("<h2 id=timeline>span timeline</h2>"
                "<p class=meta>no spans collected "
                "(trace predates the observability layer).</p>")
    t0 = min(record.start for record in spans)
    t1 = max(record.end for record in spans)
    total = max(t1 - t0, 1e-9)
    depths = _span_depths(spans)
    row_height = 22
    height = (max(depths.values()) + 1) * row_height
    divs: List[str] = []
    for record in sorted(spans, key=lambda r: (r.start, r.sid)):
        left = 100.0 * (record.start - t0) / total
        width = max(100.0 * record.duration / total, 0.15)
        top = depths[record.sid] * row_height
        label = escape(f"{record.name} [{format_time(record.duration)}]")
        divs.append(
            f'<div class=span title="{label}" '
            f'style="left:{left:.3f}%;width:{width:.3f}%;'
            f'top:{top}px;background:{_color(record.name)}">'
            f'{escape(record.name)}</div>')
    return (f"<h2 id=timeline>span timeline</h2>"
            f"<p class=meta>{len(spans)} spans over "
            f"{format_time(total)}; hover for durations.</p>"
            f'<div class=timeline style="height:{height + 4}px">'
            + "".join(divs) + "</div>")


#: lifecycle phase colors for the request waterfall (draw order:
#: batch_assemble last so it overlays the tail of queue_wait)
_WATERFALL_COLORS = (("serve:queue_wait", "#edc948"),
                     ("serve:dispatch", "#b07aa1"),
                     ("serve:execute", "#4e79a7"),
                     ("serve:batch_assemble", "#9c755f"))

#: lane cap so a long serving run still renders a readable report
_WATERFALL_MAX_LANES = 80


def _section_waterfall(trace: Trace) -> str:
    """Per-request waterfall lanes, one per ``serve:request`` tree.

    Present only when the trace carries trace-id-stamped spans (i.e.
    a serving export with synthesized request lifecycle trees); a
    plain profiled workload report is unchanged.
    """
    spans = [record for record in trace.spans
             if isinstance(record, SpanRecord)
             and record.trace_id is not None]
    roots = sorted((r for r in spans if r.name == "serve:request"),
                   key=lambda r: (r.start, r.trace_id or ""))
    if not roots:
        return ""
    children: Dict[str, List[SpanRecord]] = {}
    for record in spans:
        if record.name != "serve:request":
            children.setdefault(record.trace_id or "", []).append(record)
    shown = roots[:_WATERFALL_MAX_LANES]
    t0 = min(r.start for r in shown)
    t1 = max(r.end for r in shown)
    total = max(t1 - t0, 1e-9)
    order = {name: index
             for index, (name, _) in enumerate(_WATERFALL_COLORS)}
    colors = dict(_WATERFALL_COLORS)
    rows: List[str] = []
    for root in shown:
        rid = root.attrs.get("rid", "?")
        status = str(root.attrs.get("status", "?"))
        workload = str(root.attrs.get("workload", "?"))
        label = escape(f"rid {rid} {workload} [{status}] "
                       f"{format_time(root.duration)}")
        segments: List[str] = []
        lane = [record
                for record in children.get(root.trace_id or "", [])
                if record.name in colors]
        for record in sorted(lane,
                             key=lambda r: order.get(r.name, 99)):
            left = 100.0 * (record.start - t0) / total
            width = max(100.0 * record.duration / total, 0.1)
            title = escape(f"{record.name} "
                           f"[{format_time(record.duration)}]")
            segments.append(
                f'<div class=wf-seg title="{title}" '
                f'style="left:{left:.3f}%;width:{width:.3f}%;'
                f'background:{colors[record.name]}"></div>')
        if not segments:        # rejected: mark the admission decision
            left = 100.0 * (root.start - t0) / total
            reason = next(
                (str(r.attrs.get("reject_reason", ""))
                 for r in children.get(root.trace_id or "", [])
                 if r.name == "serve:admit"), "")
            segments.append(
                f'<div class=wf-seg title="rejected: {escape(reason)}" '
                f'style="left:{left:.3f}%;width:0.25%;'
                f'background:#e15759"></div>')
        rows.append(f'<div class=wf-row>'
                    f'<div class=wf-label title="{label}">{label}</div>'
                    f'<div class=wf-lane>{"".join(segments)}</div>'
                    f'</div>')
    legend = " · ".join(
        f'<span style="color:{color}">■</span> '
        f'{escape(name.split(":", 1)[1])}'
        for name, color in _WATERFALL_COLORS)
    truncated = ("" if len(roots) <= _WATERFALL_MAX_LANES else
                 f" (showing first {_WATERFALL_MAX_LANES} of "
                 f"{len(roots)})")
    return ("<h2 id=waterfall>request waterfall</h2>"
            f"<p class=meta>{len(roots)} request trace trees over "
            f"{format_time(total)}{truncated}; {legend}; red tick = "
            "rejected at admission; hover for phase durations.</p>"
            f"<div class=waterfall>{''.join(rows)}</div>")


def _kstats_table(stats: Sequence[KernelStats], caption: str) -> str:
    if not stats:
        return f"<p class=meta>{escape(caption)}: no events.</p>"
    counter_rows = list(stats[0].counters.as_dict())
    head = "".join(
        f"<th>{escape(s.label)}<br>"
        f"<span class='kind-{escape(s.kind)}'>{escape(s.kind)}</span>"
        f"</th>" for s in stats)
    body: List[str] = []
    for row_label in counter_rows:
        cells = "".join(f"<td>{s.counters.as_dict()[row_label]:.1f}</td>"
                        for s in stats)
        body.append(f"<tr><td>{escape(row_label)}</td>{cells}</tr>")
    body.append("<tr><td>bound (roofline)</td>"
                + "".join(f"<td>{escape(s.bound)}</td>" for s in stats)
                + "</tr>")
    body.append("<tr><td>events</td>"
                + "".join(f"<td>{s.events}</td>" for s in stats)
                + "</tr>")
    return (f"<p class=meta>{escape(caption)}</p>"
            f"<table><thead><tr><th>counter</th>{head}</tr></thead>"
            f"<tbody>{''.join(body)}</tbody></table>")


def _section_kstats(trace: Trace, device: DeviceSpec) -> str:
    by_category = kstats_by_category(trace, device)
    by_span = kstats_by_span(trace, device)
    return ("<h2 id=kstats>kernel statistics "
            "<span class=meta>(Table IV generalized)</span></h2>"
            + _kstats_table(by_category,
                            "per operator category (whole trace)")
            + _kstats_table(by_span, "per span (direct attribution)"))


def _svg_roofline(device: DeviceSpec,
                  groups: Sequence[Tuple[str, Sequence[RooflinePoint]]]
                  ) -> str:
    width, height = 640, 400
    ml, mr, mt, mb = 60, 16, 16, 44
    curve = roofline_curve(device)
    all_points = [p for _, points in groups for p in points]
    xs = [oi for oi, _ in curve] + \
        [p.operational_intensity for p in all_points
         if p.operational_intensity > 0]
    ys = [f for _, f in curve] + \
        [p.achieved_flops for p in all_points if p.achieved_flops > 0]
    xlo, xhi = math.log10(min(xs)), math.log10(max(xs))
    ylo, yhi = math.log10(min(ys)) - 0.2, math.log10(max(ys)) + 0.2

    def px(oi: float) -> float:
        return ml + (math.log10(oi) - xlo) / (xhi - xlo) \
            * (width - ml - mr)

    def py(flops: float) -> float:
        return height - mb - (math.log10(flops) - ylo) / (yhi - ylo) \
            * (height - mt - mb)

    parts: List[str] = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" '
        f'aria-label="roofline of {escape(device.name)}">',
        f'<rect width="{width}" height="{height}" fill="#f7f8fa" '
        'stroke="#c8c8d0"/>',
    ]
    # decade gridlines + axis tick labels
    for decade in range(math.ceil(xlo), math.floor(xhi) + 1):
        x = px(10.0 ** decade)
        parts.append(f'<line x1="{x:.1f}" y1="{mt}" x2="{x:.1f}" '
                     f'y2="{height - mb}" stroke="#e0e2e8"/>')
        parts.append(f'<text x="{x:.1f}" y="{height - mb + 16}" '
                     f'font-size="11" text-anchor="middle">'
                     f'1e{decade}</text>')
    for decade in range(math.ceil(ylo), math.floor(yhi) + 1):
        y = py(10.0 ** decade)
        parts.append(f'<line x1="{ml}" y1="{y:.1f}" '
                     f'x2="{width - mr}" y2="{y:.1f}" '
                     'stroke="#e0e2e8"/>')
        parts.append(f'<text x="{ml - 6}" y="{y + 4:.1f}" '
                     f'font-size="11" text-anchor="end">'
                     f'1e{decade}</text>')
    parts.append(f'<text x="{(ml + width - mr) / 2:.0f}" '
                 f'y="{height - 8}" font-size="12" '
                 'text-anchor="middle">operational intensity '
                 '(FLOP / byte)</text>')
    parts.append(f'<text x="14" y="{(mt + height - mb) / 2:.0f}" '
                 'font-size="12" text-anchor="middle" '
                 f'transform="rotate(-90 14 '
                 f'{(mt + height - mb) / 2:.0f})">'
                 'attainable FLOP/s</text>')
    # the roof itself
    path = " ".join(f"{px(oi):.1f},{py(f):.1f}" for oi, f in curve)
    parts.append(f'<polyline points="{path}" fill="none" '
                 'stroke="#1a1a2e" stroke-width="2"/>')
    ridge = device.ridge_point
    if xlo <= math.log10(ridge) <= xhi:
        parts.append(
            f'<line x1="{px(ridge):.1f}" y1="{mt}" '
            f'x2="{px(ridge):.1f}" y2="{height - mb}" '
            'stroke="#9c755f" stroke-dasharray="4 3"/>')
        parts.append(f'<text x="{px(ridge) + 4:.1f}" y="{mt + 12}" '
                     f'font-size="11" fill="#9c755f">ridge '
                     f'{ridge:.1f}</text>')
    # the points, one marker shape per group
    markers = ("circle", "rect")
    for index, (legend, points) in enumerate(groups):
        shape = markers[index % len(markers)]
        for point in points:
            if point.operational_intensity <= 0 \
                    or point.achieved_flops <= 0:
                continue
            x, y = px(point.operational_intensity), \
                py(point.achieved_flops)
            color = _color(point.label)
            title = (f"{point.label} ({legend}): OI="
                     f"{point.operational_intensity:.3g}, "
                     f"{point.achieved_flops:.3g} FLOP/s, "
                     f"{point.bound}-bound")
            if shape == "circle":
                parts.append(
                    f'<circle cx="{x:.1f}" cy="{y:.1f}" r="5" '
                    f'fill="{color}" stroke="#fff">'
                    f'<title>{escape(title)}</title></circle>')
            else:
                parts.append(
                    f'<rect x="{x - 4:.1f}" y="{y - 4:.1f}" '
                    f'width="8" height="8" fill="{color}" '
                    f'stroke="#fff">'
                    f'<title>{escape(title)}</title></rect>')
            parts.append(f'<text x="{x + 7:.1f}" y="{y + 4:.1f}" '
                         f'font-size="10">{escape(point.label)}</text>')
    parts.append("</svg>")
    return "".join(parts)


def _section_roofline(trace: Trace, device: DeviceSpec) -> str:
    phase_points = roofline_points(trace, device, group_by="phase")
    span_points = [stats.roofline
                   for stats in kstats_by_span(trace, device)
                   if stats.roofline is not None]
    if not phase_points and not span_points:
        return ("<h2 id=roofline>roofline</h2>"
                "<p class=meta>no events to place.</p>")
    svg = _svg_roofline(device, [("phase", phase_points),
                                 ("span", span_points)])
    return ("<h2 id=roofline>roofline "
            "<span class=meta>(Fig. 3c; circles = phases, "
            "squares = spans)</span></h2>" + svg)


def _section_sparsity(trace: Trace) -> str:
    stats = stage_sparsity(trace)
    if not stats:
        return ("<h2 id=sparsity>sparsity</h2>"
                "<p class=meta>no staged tensor outputs.</p>")
    body = "".join(
        f"<tr><td>{escape(s.stage)}</td><td>{s.num_events}</td>"
        f"<td>{s.mean * 100:.1f}</td>"
        f"<td>{s.weighted_mean * 100:.1f}</td>"
        f"<td>{s.minimum * 100:.1f}</td>"
        f"<td>{s.maximum * 100:.1f}</td></tr>"
        for s in stats)
    return ("<h2 id=sparsity>output sparsity by stage "
            "<span class=meta>(Fig. 5 lens)</span></h2>"
            "<table><thead><tr><th>stage</th><th>events</th>"
            "<th>mean %</th><th>weighted %</th><th>min %</th>"
            "<th>max %</th></tr></thead>"
            f"<tbody>{body}</tbody></table>")


def _section_baseline(trace: Trace, device: DeviceSpec,
                      baseline: Optional[RunRecord]) -> str:
    if baseline is None:
        return ""
    from repro.obs.compare import compare_records
    candidate = record_from_trace(trace, device=device)
    comparison = compare_records(baseline, candidate)
    return ("<h2 id=baseline>baseline comparison</h2>"
            f"<pre>{escape(comparison.render())}</pre>")


def _section_trends(history: Optional[Sequence[object]]) -> str:
    """Longitudinal perf trends: one sparkline row per history metric.

    ``history`` is a list of :class:`repro.obs.history.HistoryEntry`
    (kept untyped here so the report module imports nothing from the
    history store unless the section is requested).
    """
    if not history:
        return ""
    from repro.obs.history import (detect_change_points, metric_series,
                                   policy_for, sparkline_svg)
    names = sorted({m for e in history for m in e.metrics})  # type: ignore[attr-defined]
    if not names:
        return ""
    rows: List[str] = []
    for metric in names:
        series = metric_series(history, metric)  # type: ignore[arg-type]
        if not series:
            continue
        shifts = detect_change_points(series)
        delta = ""
        if len(series) >= 2 and series[-2] != 0:
            rel = (series[-1] - series[-2]) / abs(series[-2])
            delta = f"{rel:+.1%}"
        policy = policy_for(metric)
        gate = ("-" if policy.threshold is None
                else f"{policy.threshold:.0%}")
        spark = sparkline_svg(series[-48:],
                              change_points=[s - max(0, len(series) - 48)
                                             for s in shifts])
        rows.append(
            f"<tr><td>{escape(metric)}</td>"
            f"<td>{len(series)}</td>"
            f"<td>{series[-1]:.6g}</td>"
            f"<td>{escape(delta) or '-'}</td>"
            f"<td>{spark}</td>"
            f"<td>{escape(','.join(map(str, shifts)) or '-')}</td>"
            f"<td>{escape(gate)}</td></tr>")
    first = history[0]
    last = history[-1]
    window = (f"{len(history)} entries "
              f"({getattr(first, 'created', '') or '?'} .. "
              f"{getattr(last, 'created', '') or '?'})")
    return ("<h2 id=trends>perf trends "
            "<span class=meta>(longitudinal history)</span></h2>"
            f"<p class=meta>{escape(window)}; red dashes mark "
            "detected change points (binary segmentation); gated "
            "metrics regress CI at the listed budget.</p>"
            "<table><thead><tr><th>metric</th><th>n</th><th>last</th>"
            "<th>delta</th><th>trend</th><th>shifts@</th>"
            "<th>gate</th></tr></thead>"
            f"<tbody>{''.join(rows)}</tbody></table>")


# ---------------------------------------------------------------------------
# entry points


def render_report(trace: Trace, device: DeviceSpec = RTX_2080TI,
                  baseline: Optional[RunRecord] = None,
                  history: Optional[Sequence[object]] = None) -> str:
    """The full single-file HTML report for ``trace`` on ``device``.

    ``history`` (a list of :class:`repro.obs.history.HistoryEntry`)
    adds the longitudinal perf-trend section — per-metric sparklines
    with change-point markers.
    """
    sections = [
        _section_header(trace, device),
        _section_timeline(trace),
        _section_waterfall(trace),
        _section_kstats(trace, device),
        _section_roofline(trace, device),
        _section_sparsity(trace),
        _section_trends(history),
        _section_baseline(trace, device, baseline),
    ]
    title = escape(f"run report: {trace.workload or 'trace'}")
    return ("<!DOCTYPE html>\n"
            '<html lang="en"><head><meta charset="utf-8">\n'
            f"<title>{title}</title>\n"
            f"<style>{_CSS}</style></head>\n<body>\n"
            + "\n".join(s for s in sections if s)
            + "\n</body></html>\n")


def write_report(trace: Trace, path: str,
                 device: DeviceSpec = RTX_2080TI,
                 baseline: Optional[RunRecord] = None,
                 history: Optional[Sequence[object]] = None) -> None:
    """Write the HTML run report to ``path``."""
    with open(path, "w") as handle:
        handle.write(render_report(trace, device, baseline=baseline,
                                   history=history))
