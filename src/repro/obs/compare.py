"""Run comparison: diff two :class:`RunRecord` s, flag regressions.

Every compared metric is *lower-is-better* (events, FLOPs, bytes,
peak memory, projected latency).  A candidate value exceeding the
baseline by more than the metric's relative threshold is a
**regression**; undershooting it by the same margin is an
**improvement**; anything inside the band is **ok**.  The CLI maps
"any regression" to a non-zero exit code so CI can gate on drift —
or warn-only, for noisy environments.

Thresholds default to tight bands on the analytic counters (which
are deterministic per seed) and looser bands on projections; wall
time is recorded but never gated (it measures the build machine, not
the code).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.report import render_table
from repro.obs.runrec import RunRecord

STATUS_OK = "ok"
STATUS_REGRESSED = "regressed"
STATUS_IMPROVED = "improved"

#: metric -> allowed relative increase before it counts as a regression
DEFAULT_THRESHOLDS: Dict[str, float] = {
    "events": 0.0,
    "total_flops": 0.001,
    "total_bytes": 0.001,
    "peak_live_bytes": 0.10,
    "projected_latency_s": 0.05,
    "phase_latency_s": 0.10,  # applied to each phase entry
    # applied to each per-category synthesized kernel counter; judged
    # symmetrically — a hit rate *dropping* out of band is drift too
    "category_kstats": 0.02,
}


@dataclass
class MetricDelta:
    """One compared metric."""

    metric: str
    base: float
    cand: float
    threshold: float
    status: str

    @property
    def abs_delta(self) -> float:
        return self.cand - self.base

    @property
    def rel_delta(self) -> Optional[float]:
        if self.base == 0.0:
            return None
        return self.cand / self.base - 1.0


@dataclass
class ComparisonReport:
    """Full diff of two run records."""

    base_label: str
    cand_label: str
    deltas: List[MetricDelta] = field(default_factory=list)
    digest_match: Optional[bool] = None
    workload_match: bool = True

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.status == STATUS_REGRESSED]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        rows = []
        for delta in self.deltas:
            rel = delta.rel_delta
            rel_text = "n/a" if rel is None else f"{rel * 100:+.2f}%"
            rows.append([delta.metric, f"{delta.base:.6g}",
                         f"{delta.cand:.6g}", rel_text,
                         f"{delta.threshold * 100:.1f}%", delta.status])
        verdict = ("OK" if self.ok
                   else f"{len(self.regressions)} REGRESSION(S)")
        parts = [
            f"baseline:  {self.base_label}",
            f"candidate: {self.cand_label}",
            "",
            render_table(
                ["metric", "baseline", "candidate", "delta",
                 "threshold", "status"],
                rows, title=f"run comparison: {verdict}"),
        ]
        if not self.workload_match:
            parts.append("")
            parts.append("WARNING: records describe different workloads "
                         "— the diff compares apples to oranges")
        if self.digest_match is False:
            parts.append("")
            parts.append("note: counter digests differ — the op stream "
                         "changed (not necessarily a regression)")
        return "\n".join(parts)


def _judge(metric: str, base: float, cand: float,
           threshold: float) -> MetricDelta:
    if base == 0.0:
        status = STATUS_OK if cand <= 0.0 else STATUS_REGRESSED
    elif cand > base * (1.0 + threshold):
        status = STATUS_REGRESSED
    elif cand < base * (1.0 - threshold):
        status = STATUS_IMPROVED
    else:
        status = STATUS_OK
    return MetricDelta(metric=metric, base=base, cand=cand,
                       threshold=threshold, status=status)


def _judge_symmetric(metric: str, base: float, cand: float,
                     threshold: float) -> MetricDelta:
    """Drift band for metrics with no better/worse direction.

    Synthesized kernel counters (utilization and hit-rate percentages)
    regress when they *move*, in either direction: an L1 hit rate
    falling out of band is drift even though the value got "lower".
    """
    if base == 0.0:
        status = STATUS_OK if abs(cand) <= threshold \
            else STATUS_REGRESSED
    elif abs(cand / base - 1.0) > threshold:
        status = STATUS_REGRESSED
    else:
        status = STATUS_OK
    return MetricDelta(metric=metric, base=base, cand=cand,
                       threshold=threshold, status=status)


def compare_records(base: RunRecord, cand: RunRecord,
                    thresholds: Optional[Dict[str, float]] = None
                    ) -> ComparisonReport:
    """Diff ``cand`` against ``base`` under ``thresholds`` overrides."""
    limits = dict(DEFAULT_THRESHOLDS)
    if thresholds:
        limits.update(thresholds)
    report = ComparisonReport(
        base_label=base.label(), cand_label=cand.label(),
        workload_match=(base.workload == cand.workload))
    for metric in ("events", "total_flops", "total_bytes",
                   "peak_live_bytes", "projected_latency_s"):
        report.deltas.append(_judge(
            metric, float(getattr(base, metric)),
            float(getattr(cand, metric)), limits[metric]))
    phase_limit = limits["phase_latency_s"]
    for phase in sorted(set(base.phase_latency_s)
                        | set(cand.phase_latency_s)):
        report.deltas.append(_judge(
            f"phase_latency_s[{phase}]",
            base.phase_latency_s.get(phase, 0.0),
            cand.phase_latency_s.get(phase, 0.0), phase_limit))
    # per-category synthesized kernel counters: only diffed when both
    # records carry them (v1 baselines predate category_kstats)
    if base.category_kstats and cand.category_kstats:
        kstats_limit = limits["category_kstats"]
        for category in sorted(set(base.category_kstats)
                               | set(cand.category_kstats)):
            base_counters = base.category_kstats.get(category, {})
            cand_counters = cand.category_kstats.get(category, {})
            for counter in sorted(set(base_counters)
                                  | set(cand_counters)):
                report.deltas.append(_judge_symmetric(
                    f"category_kstats[{category}.{counter}]",
                    base_counters.get(counter, 0.0),
                    cand_counters.get(counter, 0.0), kstats_limit))
    if base.counters_digest and cand.counters_digest:
        report.digest_match = (base.counters_digest
                               == cand.counters_digest)
    return report


def parse_threshold_overrides(specs: List[str]) -> Dict[str, float]:
    """Parse CLI ``metric=fraction`` override strings."""
    out: Dict[str, float] = {}
    for spec in specs:
        if "=" not in spec:
            raise ValueError(
                f"bad threshold {spec!r}; expected metric=fraction")
        metric, _, value = spec.partition("=")
        metric = metric.strip()
        if metric not in DEFAULT_THRESHOLDS:
            raise ValueError(
                f"unknown metric {metric!r}; known: "
                f"{sorted(DEFAULT_THRESHOLDS)}")
        out[metric] = float(value)
    return out
