"""CLI subcommands for the observability layer.

Wired into the main ``repro`` parser by :func:`add_obs_subcommands`:

    python -m repro trace export nvsa --format chrome -o nvsa.json
    python -m repro trace export nvsa --format jsonl -o nvsa.jsonl
    python -m repro trace export nvsa --format flame --weight flops
    python -m repro metrics nvsa --format prom
    python -m repro record nvsa --db runs.jsonl
    python -m repro compare runs.jsonl --last 2
    python -m repro compare baseline.json candidate.json --warn-only
    python -m repro report nvsa --device rtx2080ti -o report.html
    python -m repro report nvsa --history benchmarks/history.jsonl
    python -m repro obs selfprof nvsa --json
    python -m repro obs opportunities nvsa --top 20
    python -m repro obs history record --db benchmarks/history.jsonl
    python -m repro obs history show --db benchmarks/history.jsonl
    python -m repro obs history gate --db benchmarks/history.jsonl

``compare`` exits 0 when the candidate is within thresholds and 4 on
a regression (``--warn-only`` reports but always exits 0), so CI can
gate on drift between commits.  ``report`` writes the self-contained
HTML run report (span timeline, kernel-stats matrix, roofline SVG;
``--history`` adds the longitudinal trend section); ``trace export
--format flame`` writes collapsed stacks for flamegraph.pl /
speedscope.

The ``obs`` group is the dispatch-overhead observatory: ``selfprof``
prints the per-component dispatch ledger and compiled-tier headroom
for one workload, ``opportunities`` prints the ranked fusion/hoist/
prealloc work-list the plan compiler will consume, and ``history``
maintains the committed longitudinal trajectory
(``record`` appends a structured entry, ``show`` renders trends +
change points, ``gate`` exits 6 on a regression beyond per-metric
thresholds).
"""

from __future__ import annotations

import argparse
import json
from typing import Optional

#: exit code for a regression detected by ``repro compare``
EXIT_REGRESSION = 4

OBS_COMMANDS = ("trace", "metrics", "record", "compare", "report",
                "obs")


def add_obs_subcommands(sub: "argparse._SubParsersAction") -> None:
    """Register the observability subcommands on the main parser."""
    trace = sub.add_parser(
        "trace", help="export profiled traces (chrome / jsonl)")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    export = trace_sub.add_parser(
        "export", help="profile a workload (or load a .jsonl trace "
                       "log) and export its timeline")
    from repro.obs.flame import FLAME_WEIGHTS
    export.add_argument("workload",
                        help="registered workload name, or a path to "
                             "an existing .jsonl trace log (e.g. from "
                             "repro serve bench --trace-jsonl)")
    export.add_argument("--format", default="chrome",
                        choices=("chrome", "jsonl", "flame"),
                        help="output format (default chrome)")
    export.add_argument("-o", "--output", default=None,
                        help="output path (default stdout)")
    export.add_argument("--weight", default="wall",
                        choices=FLAME_WEIGHTS,
                        help="flame stack weight lens (flame format "
                             "only; default wall)")
    export.add_argument("--device", default="rtx",
                        help="device for the 'latency' flame weight "
                             "(default rtx)")
    export.add_argument("--group-by-request", action="store_true",
                        help="chrome format: one track per trace id, "
                             "so serving exports read as per-request "
                             "waterfall lanes; jsonl format: spans "
                             "sorted by (trace id, start)")
    export.add_argument("--seed", type=int, default=0)

    metrics = sub.add_parser(
        "metrics",
        help="profile a workload and print its runtime metrics")
    metrics.add_argument("workload", help="registered workload name")
    metrics.add_argument("--format", default="prom",
                         choices=("prom", "json"),
                         help="Prometheus text or JSON snapshot")
    metrics.add_argument("--seed", type=int, default=0)

    record = sub.add_parser(
        "record",
        help="profile a workload and append a run record to the "
             "run database")
    record.add_argument("workload", help="registered workload name")
    record.add_argument("--db", default=None,
                        help="runs database path (default runs.jsonl); "
                             "with -o, write a standalone baseline "
                             "file instead")
    record.add_argument("-o", "--output", default=None,
                        help="write one standalone record JSON here "
                             "(for CI baselines) instead of appending")
    record.add_argument("--device", default="rtx")
    record.add_argument("--seed", type=int, default=0)

    compare = sub.add_parser(
        "compare",
        help="diff two run records and flag regressions "
             f"(exit {EXIT_REGRESSION})")
    compare.add_argument(
        "paths", nargs="*", default=[],
        help="BASELINE CANDIDATE record files, or one runs.jsonl "
             "database (default runs.jsonl)")
    compare.add_argument("--last", type=int, default=2,
                         help="with a single database: compare the "
                              "last N records' endpoints (default 2)")
    compare.add_argument("--threshold", action="append", default=[],
                         metavar="METRIC=FRACTION",
                         help="override a regression threshold "
                              "(repeatable)")
    compare.add_argument("--warn-only", action="store_true",
                         help="report regressions but exit 0")

    report = sub.add_parser(
        "report",
        help="profile a workload and write a self-contained HTML "
             "run report")
    report.add_argument("workload", help="registered workload name")
    report.add_argument("--device", default="rtx",
                        help="device name or alias (default rtx)")
    report.add_argument("-o", "--output", default=None,
                        help="HTML output path "
                             "(default <workload>_report.html)")
    report.add_argument("--baseline", default=None,
                        help="run-record JSON to diff against "
                             "(adds a comparison section)")
    report.add_argument("--history", default=None,
                        help="history.jsonl to render the longitudinal "
                             "perf-trend section from (sparkline per "
                             "metric, change points marked)")
    report.add_argument("--seed", type=int, default=0)

    obs = sub.add_parser(
        "obs",
        help="dispatch-overhead observatory: self-profiling ledger, "
             "fusion-opportunity reports, longitudinal perf history")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    selfprof = obs_sub.add_parser(
        "selfprof",
        help="profile a workload under the self-profiling ledger and "
             "print the per-component dispatch-overhead rollup")
    selfprof.add_argument("workload", help="registered workload name")
    selfprof.add_argument("--device", default="rtx",
                          help="device for the analytic headroom "
                               "estimate (default rtx)")
    selfprof.add_argument("--seed", type=int, default=0)
    selfprof.add_argument("--json", action="store_true",
                          help="print the full ledger as JSON "
                               "(deterministic + measured splits)")

    opportunities = obs_sub.add_parser(
        "opportunities",
        help="scan a workload's trace for fusible chains, "
             "loop-invariant rebuilds, and repeated allocations — the "
             "repro.compile work-list")
    opportunities.add_argument("workload",
                               help="registered workload name")
    opportunities.add_argument("--seed", type=int, default=0)
    opportunities.add_argument("--top", type=int, default=15,
                               help="rows to print (default 15)")
    opportunities.add_argument("--json", action="store_true",
                               help="print the ranked report as JSON")
    opportunities.add_argument("-o", "--output", default=None,
                               help="also write the JSON report here")

    history = obs_sub.add_parser(
        "history",
        help="longitudinal perf history: record / show / gate")
    history_sub = history.add_subparsers(dest="history_command",
                                         required=True)
    from repro.obs.history import DEFAULT_HISTORY

    h_record = history_sub.add_parser(
        "record", help="append a structured perf entry (ledger, "
                       "headroom, opportunities, bench results)")
    h_record.add_argument("--db", default=DEFAULT_HISTORY,
                          help=f"history database "
                               f"(default {DEFAULT_HISTORY})")
    h_record.add_argument("--workloads", default="nvsa,prae",
                          help="comma list to profile "
                               "(default nvsa,prae)")
    h_record.add_argument("--results", default="benchmarks/results",
                          help="structured bench results dir to "
                               "harvest (default benchmarks/results; "
                               "'' to skip)")
    h_record.add_argument("--device", default="rtx")
    h_record.add_argument("--seed", type=int, default=0)
    h_record.add_argument("--label", default="local",
                          help="entry label (e.g. ci)")

    h_show = history_sub.add_parser(
        "show", help="render per-metric trends and change points")
    h_show.add_argument("--db", default=DEFAULT_HISTORY)
    h_show.add_argument("--metric", action="append", default=[],
                        help="restrict to these metrics (repeatable)")

    h_gate = history_sub.add_parser(
        "gate", help="compare the newest entry against the trailing "
                     "median; exit 6 on a regression beyond "
                     "per-metric thresholds")
    h_gate.add_argument("--db", default=DEFAULT_HISTORY)
    h_gate.add_argument("--threshold", action="append", default=[],
                        metavar="METRIC=FRACTION",
                        help="override/add a gate threshold "
                             "(negative fraction: lower is worse; "
                             "'off' ungates; repeatable)")
    h_gate.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0")


def _profile(workload: str, seed: int):
    from repro.workloads import available, create
    if workload not in available():
        raise SystemExit(
            f"unknown workload {workload!r}; available: {available()}")
    return create(workload, seed=seed).profile()


def _run_trace(args: argparse.Namespace) -> int:
    import os
    from repro.hwsim.devices import get_device
    from repro.obs.chrome import trace_to_chrome
    from repro.obs.flame import trace_to_flame
    from repro.obs.jsonl import read_jsonl, trace_to_jsonl
    group = getattr(args, "group_by_request", False)
    if args.workload.endswith(".jsonl") and os.path.exists(args.workload):
        # re-export an existing log (e.g. a serving trace) instead of
        # profiling — the path is the trace source
        trace = read_jsonl(args.workload)
    else:
        trace = _profile(args.workload, args.seed)
    if group:
        trace.spans = sorted(
            trace.spans, key=lambda s: (s.trace_id or "", s.start, s.sid))
    if args.format == "chrome":
        payload = trace_to_chrome(trace, group_by_request=group)
        hint = "open in chrome://tracing or Perfetto"
    elif args.format == "jsonl":
        payload = trace_to_jsonl(trace)
        hint = "re-import with repro.obs.jsonl.read_jsonl"
    else:
        payload = trace_to_flame(trace, weight=args.weight,
                                 device=get_device(args.device))
        hint = ("collapsed stacks; render with flamegraph.pl or "
                "load into speedscope")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(payload)
        print(f"wrote {args.output} ({len(trace)} events, "
              f"{len(trace.spans)} spans; {hint})")
    else:
        print(payload, end="")
    return 0


def _run_report(args: argparse.Namespace) -> int:
    from repro.hwsim.devices import get_device
    from repro.obs.report import write_report
    from repro.obs.runrec import load_record
    device = get_device(args.device)
    baseline = load_record(args.baseline) if args.baseline else None
    history = None
    if getattr(args, "history", None):
        from repro.obs.history import load_history
        try:
            history = load_history(args.history)
        except OSError as exc:
            raise SystemExit(f"repro report: {exc}")
    trace = _profile(args.workload, args.seed)
    output = args.output or f"{args.workload}_report.html"
    write_report(trace, output, device=device, baseline=baseline,
                 history=history)
    print(f"wrote {output} ({len(trace)} events, "
          f"{len(trace.spans)} spans; self-contained HTML — open in "
          "any browser)")
    return 0


def _run_metrics(args: argparse.Namespace) -> int:
    from repro.obs import metrics as obs_metrics
    from repro.obs.prom import render_runtime
    with obs_metrics.scoped_runtime() as runtime:
        _profile(args.workload, args.seed)
        if args.format == "json":
            print(json.dumps(runtime.registry.snapshot(), indent=1,
                             sort_keys=True))
        else:
            print(render_runtime(runtime), end="")
    return 0


def _run_record(args: argparse.Namespace) -> int:
    from repro.hwsim.devices import get_device
    from repro.obs.runrec import (DEFAULT_DB, append_record,
                                  record_from_trace, save_record)
    device = get_device(args.device)
    trace = _profile(args.workload, args.seed)
    record = record_from_trace(trace, device=device)
    if args.output:
        save_record(record, args.output)
        print(f"wrote baseline record {args.output} ({record.label()})")
    else:
        db = args.db or DEFAULT_DB
        append_record(record, db)
        print(f"appended {record.label()} to {db}")
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    from repro.obs.compare import compare_records, parse_threshold_overrides
    from repro.obs.runrec import DEFAULT_DB, load_record, load_records
    try:
        thresholds = parse_threshold_overrides(args.threshold)
    except ValueError as exc:
        raise SystemExit(f"repro compare: {exc}")
    paths = list(args.paths)
    if len(paths) == 2:
        base = load_record(paths[0])
        cand = load_record(paths[1])
    elif len(paths) <= 1:
        db = paths[0] if paths else DEFAULT_DB
        try:
            records = load_records(db)
        except OSError as exc:
            raise SystemExit(f"repro compare: {exc}")
        window = records[-max(2, args.last):]
        if len(window) < 2:
            raise SystemExit(
                f"repro compare: {db} holds {len(records)} record(s); "
                "need at least 2")
        base, cand = window[0], window[-1]
    else:
        raise SystemExit("repro compare: expected BASELINE CANDIDATE "
                         "or a single runs.jsonl database")
    report = compare_records(base, cand, thresholds)
    print(report.render())
    if report.ok:
        return 0
    if args.warn_only:
        print(f"\nwarn-only: {len(report.regressions)} regression(s) "
              "ignored")
        return 0
    return EXIT_REGRESSION


def _run_selfprof(args: argparse.Namespace) -> int:
    from repro.core.analysis import latency_breakdown
    from repro.hwsim.devices import get_device
    from repro.obs import selfprof
    device = get_device(args.device)
    with selfprof.scoped_ledger() as ledger:
        trace = _profile(args.workload, args.seed)
    projected = latency_breakdown(trace, device).total_time
    if args.json:
        doc = ledger.to_dict()
        doc["deterministic"]["modeled_headroom_pct"] = round(  # type: ignore[index]
            100.0 * ledger.modeled_headroom(projected), 6)
        doc["digest"] = ledger.digest()
        print(json.dumps(doc, indent=1, sort_keys=True))
    else:
        print(ledger.render())
        print(f"compiled-tier headroom "
              f"{100.0 * ledger.modeled_headroom(projected):.1f}% of "
              f"projected {device.name} latency (modeled overhead vs "
              f"analytic kernel projection; deterministic)")
        print(f"ledger digest {ledger.digest()[:16]}")
    return 0


def _run_opportunities(args: argparse.Namespace) -> int:
    from repro.obs.opportune import analyze_trace
    trace = _profile(args.workload, args.seed)
    report = analyze_trace(trace)
    payload = json.dumps(report.to_dict(), indent=1, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(payload + "\n")
    if args.json:
        print(payload)
    else:
        print(report.render(top=args.top))
        print(f"report digest {report.digest()[:16]}"
              + (f"; wrote {args.output}" if args.output else ""))
    return 0


def _run_history(args: argparse.Namespace) -> int:
    from repro.obs.history import (EXIT_TREND_REGRESSION, append_entry,
                                   detect_regressions, entry_from_sources,
                                   load_history, parse_policy_overrides,
                                   render_history)
    if args.history_command == "record":
        workloads = tuple(w.strip() for w in args.workloads.split(",")
                          if w.strip())
        from repro.hwsim.devices import get_device
        entry = entry_from_sources(
            workloads=workloads,
            results_dir=args.results or None,
            device=get_device(args.device),
            seed=args.seed, label=args.label)
        append_entry(entry, args.db)
        print(f"appended entry {entry.digest()[:16]} "
              f"({len(entry.metrics)} metrics, label={entry.label}) "
              f"to {args.db}")
        return 0
    try:
        entries = load_history(args.db)
    except OSError as exc:
        raise SystemExit(f"repro obs history: {exc}")
    if args.history_command == "show":
        print(render_history(entries, args.metric or None))
        return 0
    # gate
    try:
        overrides = parse_policy_overrides(args.threshold)
    except ValueError as exc:
        raise SystemExit(f"repro obs history gate: {exc}")
    if len(entries) < 2:
        print(f"history gate: {len(entries)} entry(ies) in {args.db}; "
              "nothing to gate against")
        return 0
    regressions = detect_regressions(entries, overrides)
    gated = sum(1 for m in entries[-1].metrics
                if _gated(m, overrides))
    if not regressions:
        print(f"history gate: OK — newest entry within budget on "
              f"{gated} gated metric(s) "
              f"(vs median of up to {min(len(entries) - 1, 5)} "
              f"prior entries)")
        return 0
    for regression in regressions:
        print(regression.render())
    print(f"\nhistory gate: {len(regressions)} regression(s) "
          f"across {gated} gated metric(s)")
    if args.warn_only:
        print("warn-only: exiting 0")
        return 0
    return EXIT_TREND_REGRESSION


def _gated(metric: str, overrides) -> bool:
    from repro.obs.history import policy_for
    return policy_for(metric, overrides).threshold is not None


def _run_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "selfprof":
        return _run_selfprof(args)
    if args.obs_command == "opportunities":
        return _run_opportunities(args)
    return _run_history(args)


def run_obs_command(args: argparse.Namespace) -> Optional[int]:
    """Handle an observability subcommand; ``None`` if not ours."""
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "metrics":
        return _run_metrics(args)
    if args.command == "record":
        return _run_record(args)
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "report":
        return _run_report(args)
    if args.command == "obs":
        return _run_obs(args)
    return None
