"""Nsight-Compute-style kernel statistics for real traces.

Table IV of the paper ties GPU performance counters (compute/ALU
utilization, L1/L2 throughput and hit rates, DRAM BW) to individual
neural vs. symbolic kernels — but :mod:`repro.hwsim.kernels` models
only four hand-picked NVSA archetypes.  This module generalizes that
counter synthesis to *every span of every workload*: it folds a span's
(or category's) attributed :class:`~repro.core.profiler.TraceEvent`
counters through the same analytic pipe-time model the archetypes use
(issue, FMA, L1, L2, DRAM pipes with sustained-efficiency deratings,
counters as pipe-time ratios) on any
:class:`~repro.hwsim.device.DeviceSpec`.

Where the archetypes replay a structurally-faithful address stream to
obtain hit rates, real trace events carry only aggregate footprints,
so hit rates here come from a two-term locality model per operator
category:

* **line reuse** — short-window temporal reuse that survives streaming
  (the read-miss/read-miss/write-hit 1/3 law of an in-place binary op);
* **capacity reuse** — reuse that needs the working set resident,
  scaled by ``min(1, capacity / working_set)`` at each cache level
  (one SM's L1 slice, then the shared L2).

The per-category mix table (:data:`CATEGORY_MIX`) is keyed by the
``OpCategory`` *value strings* so the RL002 lint check can statically
verify it stays in lockstep with :data:`repro.core.taxonomy.OP_CATEGORIES`.

Counter semantics approximate (not equal) Nsight Compute's, exactly as
:mod:`repro.hwsim.kernels` documents; :func:`archetype_kstats` exposes
the four Table IV archetypes through the same result type so the two
paths stay comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.profiler import Trace, TraceEvent
from repro.core.taxonomy import CATEGORY_ORDER, OpCategory
from repro.hwsim import kernels as _kernels
from repro.hwsim.device import DeviceSpec
from repro.hwsim.devices import RTX_2080TI
from repro.hwsim.kernels import KernelCounters
from repro.hwsim.roofline import RooflinePoint
from repro.obs.spans import SpanRecord

#: warp width assumed by the instruction-count estimates
_WARP = 32.0
#: hit rates are capped here — even perfectly resident working sets
#: pay compulsory misses
_MAX_HIT = 0.98
#: warp schedulers per SM (matches ``hwsim.kernels.simulate_kernel``)
_SCHEDULERS_PER_CORE = 4


@dataclass(frozen=True)
class CategoryMix:
    """Instruction mix and cache-locality model of one operator category.

    ``insts_per_flop`` / ``insts_per_word`` estimate the scalar
    instruction stream from the event's FLOP and 4-byte-word traffic
    counts (an FMA-dominated GEMM issues ~0.55 insts/FLOP; a streaming
    in-place add issues ~1 inst/FLOP plus ~0.67 insts/word for
    loads/stores and addressing).  ``l1_amplification`` is
    L1-*structure* traffic per global byte (register-tile loads on a
    tiled GEMM pass through the L1/shared-memory structure ~8x).
    ``*_line_reuse`` / ``*_capacity_reuse`` parameterize the two-term
    hit-rate model described in the module docstring.
    """

    kind: str                 # "neural" | "symbolic" (Table IV contrast)
    insts_per_flop: float
    insts_per_word: float
    fp_inst_share: float
    l1_amplification: float
    l1_line_reuse: float
    l1_capacity_reuse: float
    l2_line_reuse: float
    l2_capacity_reuse: float


#: Per-category counter-synthesis model, keyed by ``OpCategory.value``
#: strings.  RL002 statically checks the keys resolve through
#: ``repro.core.taxonomy`` and cover every category (both directions).
CATEGORY_MIX: Dict[str, CategoryMix] = {
    "convolution": CategoryMix(
        kind="neural", insts_per_flop=0.62, insts_per_word=0.0,
        fp_inst_share=0.90, l1_amplification=6.0,
        l1_line_reuse=0.35, l1_capacity_reuse=0.50,
        l2_line_reuse=0.30, l2_capacity_reuse=0.60),
    "matmul": CategoryMix(
        kind="neural", insts_per_flop=0.55, insts_per_word=0.0,
        fp_inst_share=0.93, l1_amplification=8.0,
        l1_line_reuse=0.02, l1_capacity_reuse=0.30,
        l2_line_reuse=0.35, l2_capacity_reuse=0.55),
    "elementwise": CategoryMix(
        kind="symbolic", insts_per_flop=1.0, insts_per_word=0.67,
        fp_inst_share=0.50, l1_amplification=1.6,
        l1_line_reuse=0.33, l1_capacity_reuse=0.50,
        l2_line_reuse=0.33, l2_capacity_reuse=0.55),
    "transform": CategoryMix(
        kind="symbolic", insts_per_flop=0.50, insts_per_word=1.0,
        fp_inst_share=0.20, l1_amplification=2.0,
        l1_line_reuse=0.20, l1_capacity_reuse=0.45,
        l2_line_reuse=0.25, l2_capacity_reuse=0.50),
    "movement": CategoryMix(
        kind="symbolic", insts_per_flop=0.0, insts_per_word=0.80,
        fp_inst_share=0.05, l1_amplification=1.0,
        l1_line_reuse=0.0, l1_capacity_reuse=0.40,
        l2_line_reuse=0.20, l2_capacity_reuse=0.50),
    "other": CategoryMix(
        kind="symbolic", insts_per_flop=2.0, insts_per_word=1.5,
        fp_inst_share=0.30, l1_amplification=1.2,
        l1_line_reuse=0.30, l1_capacity_reuse=0.60,
        l2_line_reuse=0.30, l2_capacity_reuse=0.60),
}


@dataclass
class KernelStats:
    """One row of the generalized Table IV: a span or category group."""

    label: str
    kind: str                  # "neural" | "symbolic" | "mixed"
    events: int
    flops: float
    bytes: float               # global traffic (read + written)
    wall_time: float           # measured host seconds (context only)
    modeled_time: float        # analytic pipe-model seconds on the device
    counters: KernelCounters
    roofline: Optional[RooflinePoint] = None

    @property
    def bound(self) -> str:
        """Roofline verdict (``"compute"`` / ``"memory"`` / ``"n/a"``)."""
        return self.roofline.bound if self.roofline is not None else "n/a"


def _group_kind(events: Sequence[TraceEvent]) -> str:
    """Neural/symbolic kind of a group from its phase tags.

    Falls back to the dominant (by FLOPs) category's mix kind when
    the events are untagged; mixed-phase groups report ``"mixed"``.
    """
    phases = {e.phase for e in events if e.phase}
    if phases == {"neural"} or phases == {"symbolic"}:
        return next(iter(phases))
    if len(phases) > 1:
        return "mixed"
    flops_by_kind: Dict[str, float] = {}
    for event in events:
        kind = CATEGORY_MIX[event.category.value].kind
        flops_by_kind[kind] = flops_by_kind.get(kind, 0.0) \
            + max(event.flops, 1.0)
    return max(flops_by_kind, key=lambda k: flops_by_kind[k]) \
        if flops_by_kind else "symbolic"


def synthesize_kstats(label: str, events: Sequence[TraceEvent],
                      device: DeviceSpec = RTX_2080TI,
                      kind: Optional[str] = None) -> Optional[KernelStats]:
    """Fold ``events`` through the device model into one counter row.

    Returns ``None`` for empty groups.  The pipe-time model mirrors
    :func:`repro.hwsim.kernels.simulate_kernel` (same sustained-
    efficiency deratings); hit rates come from the per-category
    locality model, traffic-weighted across the group's events.
    Per-event kernel-launch overhead is added to the elapsed time, so
    a span of many tiny symbolic kernels shows the launch-bound idle
    ALUs the paper characterizes.
    """
    events = list(events)
    if not events:
        return None
    l1_slice = device.l1.size / max(device.num_cores, 1)

    flops = 0.0
    gbytes = 0.0
    warp_insts = 0.0
    fp_insts = 0.0
    l1_bytes = 0.0
    l2_bytes = 0.0
    dram_bytes = 0.0
    l1_hit_weighted = 0.0
    l2_hit_weighted = 0.0
    wall = 0.0
    for event in events:
        mix = CATEGORY_MIX[event.category.value]
        traffic = float(event.total_bytes)
        words = traffic / 4.0
        scalar_insts = (event.flops * mix.insts_per_flop
                        + words * mix.insts_per_word)
        warp_insts += scalar_insts / _WARP
        fp_insts += scalar_insts / _WARP * mix.fp_inst_share
        flops += event.flops
        gbytes += traffic
        wall += event.wall_time
        l1_bytes += traffic * mix.l1_amplification
        working_set = max(traffic, 1.0)
        l1_hit = min(_MAX_HIT, mix.l1_line_reuse
                     + mix.l1_capacity_reuse
                     * min(1.0, l1_slice / working_set))
        to_l2 = traffic * (1.0 - l1_hit)
        l2_hit = min(_MAX_HIT, mix.l2_line_reuse
                     + mix.l2_capacity_reuse
                     * min(1.0, device.l2.size / working_set))
        l1_hit_weighted += l1_hit * traffic
        l2_hit_weighted += l2_hit * to_l2
        l2_bytes += to_l2
        dram_bytes += to_l2 * (1.0 - l2_hit)

    issue_bw = (device.num_cores * _SCHEDULERS_PER_CORE
                * device.clock_hz)
    t_issue_ideal = warp_insts / issue_bw
    t_fma_ideal = flops / device.peak_flops
    t_fma = t_fma_ideal / _kernels._FMA_SUSTAIN
    t_l1 = l1_bytes / device.l1.bandwidth
    t_l2 = l2_bytes / device.l2.bandwidth
    t_dram = dram_bytes / (device.dram_bandwidth
                           * _kernels._DRAM_SUSTAIN)
    launch = len(events) * device.kernel_launch_overhead
    t_total = max(t_issue_ideal, t_fma, t_l1, t_l2, t_dram) + launch
    if t_total <= 0.0:
        return None

    compute_pct = 100.0 * max(t_issue_ideal, t_fma_ideal) / t_total
    fp_share = fp_insts / warp_insts if warp_insts > 0 else 0.0
    counters = KernelCounters(
        name=label,
        kind=kind if kind is not None else _group_kind(events),
        compute_throughput_pct=min(100.0, compute_pct),
        alu_utilization_pct=min(100.0, fp_share * compute_pct),
        l1_throughput_pct=min(100.0, 100.0 * t_l1 / t_total),
        l2_throughput_pct=min(100.0, 100.0 * t_l2 / t_total),
        l1_hit_rate_pct=(100.0 * l1_hit_weighted / gbytes
                         if gbytes > 0 else 0.0),
        l2_hit_rate_pct=(100.0 * l2_hit_weighted / l2_bytes
                         if l2_bytes > 0 else 0.0),
        dram_bw_utilization_pct=min(
            100.0, 100.0 * (dram_bytes / device.dram_bandwidth)
            / t_total),
    )

    roofline: Optional[RooflinePoint] = None
    if gbytes > 0 and flops > 0:
        oi = flops / gbytes
        roofline = RooflinePoint(
            label=label,
            operational_intensity=oi,
            achieved_flops=flops / t_total,
            attainable_flops=device.attainable_flops(oi))
        roofline._ridge = device.ridge_point

    return KernelStats(
        label=label, kind=counters.kind, events=len(events),
        flops=flops, bytes=gbytes, wall_time=wall,
        modeled_time=t_total, counters=counters, roofline=roofline)


def kstats_by_span(trace: Trace,
                   device: DeviceSpec = RTX_2080TI) -> List[KernelStats]:
    """One counter row per span with directly attributed events.

    Spans are ordered by span id (start order); events dispatched
    outside any span (or loaded from pre-attribution archives) fold
    into a trailing ``<unattributed>`` row.  This is the Fig. 3c
    per-span view: each row carries its own
    :class:`~repro.hwsim.roofline.RooflinePoint` and memory- vs
    compute-bound verdict.
    """
    rollup = trace.span_rollup()
    spans = sorted((s for s in trace.spans
                    if isinstance(s, SpanRecord) and s.sid in rollup),
                   key=lambda s: s.sid)
    out: List[KernelStats] = []
    for record in spans:
        stats = synthesize_kstats(
            f"{record.name}#{record.sid}",
            trace.by_span(record.sid).events, device)
        if stats is not None:
            out.append(stats)
    if None in rollup:
        stats = synthesize_kstats("<unattributed>",
                                  trace.by_span(None).events, device)
        if stats is not None:
            out.append(stats)
    return out


def kstats_by_category(trace: Trace,
                       device: DeviceSpec = RTX_2080TI,
                       phase: Optional[str] = None) -> List[KernelStats]:
    """One counter row per operator category (Fig. 3a x Table IV).

    ``phase`` restricts the fold to one phase's events, so the
    neural/symbolic counter contrast can be read per category.
    """
    source = trace if phase is None else trace.by_phase(phase)
    out: List[KernelStats] = []
    for category in CATEGORY_ORDER:
        stats = synthesize_kstats(
            category.value, source.by_category(category).events, device,
            kind=CATEGORY_MIX[category.value].kind)
        if stats is not None:
            out.append(stats)
    return out


def archetype_kstats(device: DeviceSpec = RTX_2080TI) -> List[KernelStats]:
    """The four NVSA Table IV archetypes as :class:`KernelStats`.

    Delegates to the address-stream-replay model
    (:func:`repro.hwsim.kernels.simulate_kernel`), so these counters
    are bit-identical to ``repro.core.inefficiency.analyze_inefficiency``
    — the bridge that keeps the generalized per-span path comparable
    with the paper's hand-modeled baseline.
    """
    out: List[KernelStats] = []
    for profile in _kernels.nvsa_table4_kernels(device):
        counters = _kernels.simulate_kernel(profile, device)
        oi = profile.flops / max(profile.compulsory_bytes, 1.0)
        point = RooflinePoint(
            label=profile.name,
            operational_intensity=oi,
            achieved_flops=device.attainable_flops(oi),
            attainable_flops=device.attainable_flops(oi))
        point._ridge = device.ridge_point
        out.append(KernelStats(
            label=profile.name, kind=profile.kind, events=1,
            flops=profile.flops, bytes=profile.global_bytes,
            wall_time=0.0, modeled_time=0.0, counters=counters,
            roofline=point))
    return out


def render_kstats(stats: Iterable[KernelStats],
                  title: str = "") -> str:
    """Text matrix in Table IV layout: counter rows x group columns."""
    from repro.core.report import render_table
    stats = list(stats)
    if not stats:
        return "(no kernel statistics: empty trace)"
    counter_rows = list(stats[0].counters.as_dict())
    rows = []
    for row_label in counter_rows:
        rows.append([row_label]
                    + [f"{s.counters.as_dict()[row_label]:.1f}"
                       for s in stats])
    rows.append(["bound (roofline)"] + [s.bound for s in stats])
    return render_table(["counter"] + [s.label for s in stats], rows,
                        title=title or "kernel statistics")
