"""Prometheus text-format rendering of a metrics registry.

Produces the ``text/plain; version=0.0.4`` exposition format a
Prometheus scraper (or a human) can read: ``# HELP`` / ``# TYPE``
headers followed by one sample line per label combination, with
histogram buckets expanded to cumulative ``le`` series plus ``_sum``,
``_count``, and bucket-estimated p50/p95/p99 ``quantile`` lines.
Output is fully sorted so snapshots diff cleanly.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.obs.metrics import (Histogram, Metric, MetricsRegistry,
                               RuntimeMetrics)

#: quantiles exported for every histogram label set
QUANTILES: Tuple[float, ...] = (50.0, 95.0, 99.0)


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels(metric: Metric, key, extra: str = "") -> str:
    pairs = [f'{name}="{_escape(value)}"'
             for name, value in zip(metric.labelnames, key)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_metric(metric: Metric) -> str:
    """One metric family in exposition format."""
    lines: List[str] = []
    if metric.help_text:
        lines.append(f"# HELP {metric.name} {_escape(metric.help_text)}")
    lines.append(f"# TYPE {metric.name} {metric.kind}")
    if isinstance(metric, Histogram):
        for key, _total in metric.samples():
            cumulative = metric.cumulative_counts(key)
            for bound, count in zip(metric.buckets, cumulative):
                le = 'le="%s"' % _format_value(bound)
                lines.append(f"{metric.name}_bucket"
                             f"{_labels(metric, key, le)} {count}")
            labelset = dict(zip(metric.labelnames, key))
            inf_label = 'le="+Inf"'
            lines.append(f"{metric.name}_bucket"
                         f"{_labels(metric, key, inf_label)}"
                         f" {metric.count(**labelset)}")
            lines.append(f"{metric.name}_sum{_labels(metric, key)} "
                         f"{_format_value(metric.sum(**labelset))}")
            lines.append(f"{metric.name}_count{_labels(metric, key)} "
                         f"{metric.count(**labelset)}")
            # summary-style quantile lines estimated from the buckets,
            # so dashboards get p50/p95/p99 without PromQL
            for q in QUANTILES:
                quantile = 'quantile="%s"' % _format_value(q / 100.0)
                lines.append(
                    f"{metric.name}{_labels(metric, key, quantile)} "
                    f"{_format_value(metric.percentile_key(key, q))}")
    else:
        for key, value in metric.samples():
            lines.append(f"{metric.name}{_labels(metric, key)} "
                         f"{_format_value(value)}")
    return "\n".join(lines)


def render_registry(registry: MetricsRegistry) -> str:
    """The whole registry in exposition format (sorted by name)."""
    families = [render_metric(metric)
                for metric in sorted(registry.metrics(),
                                     key=lambda m: m.name)]
    return "\n".join(families) + ("\n" if families else "")


def render_runtime(runtime: RuntimeMetrics) -> str:
    """Exposition snapshot of one :class:`RuntimeMetrics`."""
    return render_registry(runtime.registry)
