"""Live telemetry: ring-buffer bus, snapshots, tail sampling, SLO burn.

The serving layer characterizes itself *after* a run (``ServerStats``
summaries); this module is the *while it runs* counterpart — the
pieces a production operator watches:

* :class:`RingBufferBus` — a bounded, lock-protected event bus the
  hot path publishes into.  Publishing is O(1), never blocks, and
  never grows: when the ring is full the oldest event is overwritten
  and slow subscribers observe the loss as a **drop count** computed
  from sequence-number gaps.  Losing telemetry under overload is the
  deliberate trade — the serving path must never wait on an observer.
* :class:`SnapshotAggregator` — rolling-window aggregation emitted as
  periodic snapshots: p50/p95/p99 end-to-end latency, throughput,
  status counts, and the rejection mix per classified reason.
* :class:`TailSamplingPolicy` — head sampling wastes retention on
  healthy traffic; tail sampling decides *after* the outcome is
  known.  Failed / degraded / rejected / deadline-missed / slow
  requests always keep their full span trees; healthy requests are
  kept at a small deterministic ratio (a seeded hash draw over the
  trace id, so two runs of one seeded schedule retain identical
  trace sets — the property CI asserts).
* :class:`BurnRateMonitor` — multi-window SLO burn-rate alerting in
  the SRE-workbook style: the error-budget burn rate over a fast and
  a slow window, with edge-triggered ``page`` / ``ticket`` alerts.
* :class:`LiveTelemetry` — the facade the server publishes into
  (``InferenceServer.attach_telemetry``), fanning one response event
  out to all four, and serializing snapshots/alerts/samples as JSONL
  (``repro serve bench --live-snapshots``).

Everything is clocked by the *event* timestamps, not the wall clock,
so the same pipeline serves both live wall-clock mode and the
deterministic virtual-time schedule mode bit-identically.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.spans import SpanRecord

__all__ = [
    "BurnRateMonitor", "LiveTelemetry", "RingBufferBus", "SLOPolicy",
    "SnapshotAggregator", "Subscriber", "TailSamplingPolicy",
]

#: statuses counted against the SLO error budget
_ERROR_STATUSES = ("failed", "rejected")


# -- event bus ---------------------------------------------------------------

class Subscriber:
    """One reader's cursor into a :class:`RingBufferBus`.

    ``poll()`` returns everything published since the last poll plus
    the number of events this subscriber lost to ring overwrites.
    """

    def __init__(self, bus: "RingBufferBus"):
        self._bus = bus
        self._next_seq = bus.seq
        self.dropped = 0

    def poll(self) -> Tuple[List[Dict[str, object]], int]:
        """(new events, events dropped since the last poll)."""
        events, dropped, self._next_seq = self._bus.read_from(self._next_seq)
        self.dropped += dropped
        return events, dropped


class RingBufferBus:
    """Bounded single-lock event ring; publishing never blocks.

    Every event gets a monotonically increasing sequence number.  The
    ring holds the last ``capacity`` events; readers that fall more
    than ``capacity`` behind lose the overwritten prefix and are told
    exactly how much they lost.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.capacity = capacity
        self._ring: List[Optional[Dict[str, object]]] = [None] * capacity
        self._lock = threading.Lock()
        self._seq = 0          # next sequence number to assign

    @property
    def seq(self) -> int:
        with self._lock:
            return self._seq

    @property
    def published(self) -> int:
        """Total events ever published."""
        return self.seq

    def publish(self, event: Dict[str, object]) -> int:
        """Append ``event``; O(1), overwrites the oldest when full."""
        with self._lock:
            seq = self._seq
            self._ring[seq % self.capacity] = event
            self._seq = seq + 1
            return seq

    def read_from(self, start_seq: int) -> Tuple[List[Dict[str, object]],
                                                 int, int]:
        """Events with seq >= ``start_seq`` still in the ring.

        Returns ``(events, dropped, next_seq)`` where ``dropped``
        counts events already overwritten (the gap between
        ``start_seq`` and the oldest retained sequence number).
        """
        with self._lock:
            seq = self._seq
            oldest = max(0, seq - self.capacity)
            dropped = max(0, oldest - start_seq)
            first = max(start_seq, oldest)
            events = [self._ring[i % self.capacity]  # type: ignore[misc]
                      for i in range(first, seq)]
            return list(events), dropped, seq

    def subscribe(self) -> Subscriber:
        return Subscriber(self)


# -- rolling aggregation -----------------------------------------------------

def _percentile(sorted_values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(pct / 100.0 * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class SnapshotAggregator:
    """Rolling-window aggregation emitted as periodic snapshots.

    ``observe`` accumulates one response event; ``snapshot`` rolls
    the window (dropping events older than ``window`` seconds before
    ``at``) and returns the aggregate: latency percentiles over
    *completed* requests, throughput, status counts, and the
    per-class rejection mix.
    """

    def __init__(self, window: float = 5.0,
                 percentiles: Tuple[int, ...] = (50, 95, 99)):
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self.percentiles = percentiles
        self._events: List[Dict[str, object]] = []

    def observe(self, event: Dict[str, object]) -> None:
        self._events.append(event)

    def _roll(self, at: float) -> None:
        horizon = at - self.window
        self._events = [e for e in self._events
                        if float(e.get("t", 0.0)) > horizon]

    def snapshot(self, at: float) -> Dict[str, object]:
        """The rolling aggregate as of service-clock time ``at``."""
        self._roll(at)
        statuses: Dict[str, int] = {}
        rejections: Dict[str, int] = {}
        latencies: List[float] = []
        queue_waits: List[float] = []
        for event in self._events:
            status = str(event.get("status"))
            statuses[status] = statuses.get(status, 0) + 1
            if status == "rejected":
                reason = str(event.get("reject_reason"))
                rejections[reason] = rejections.get(reason, 0) + 1
            else:
                latencies.append(float(event.get("latency", 0.0)))
                queue_waits.append(float(event.get("queue_wait", 0.0)))
        latencies.sort()
        queue_waits.sort()
        span = min(self.window, at) or self.window
        return {
            "type": "snapshot",
            "t": round(at, 9),
            "window": self.window,
            "count": len(self._events),
            "throughput_rps": round(len(latencies) / span, 6) if span else 0.0,
            "latency": {f"p{p}": round(_percentile(latencies, p), 9)
                        for p in self.percentiles},
            "queue_wait": {f"p{p}": round(_percentile(queue_waits, p), 9)
                           for p in self.percentiles},
            "statuses": dict(sorted(statuses.items())),
            "rejections": dict(sorted(rejections.items())),
        }


# -- tail-based sampling -----------------------------------------------------

class TailSamplingPolicy:
    """Decide *after* the outcome which traces keep full span trees.

    Interesting requests (non-ok status, deadline misses, latency
    above ``slow_threshold``) are always retained.  Healthy requests
    are retained at ``healthy_ratio`` via a deterministic seeded hash
    draw over the trace id — no RNG state, so the decision for a
    given (seed, trace_id) never varies across runs or threads.
    """

    KEEP_REASONS = ("failed", "degraded", "rejected", "deadline", "slow",
                    "healthy_sample")

    def __init__(self, seed: int = 0, healthy_ratio: float = 0.05,
                 slow_threshold: Optional[float] = None):
        if not 0.0 <= healthy_ratio <= 1.0:
            raise ValueError("healthy_ratio must be within [0, 1]")
        self.seed = seed
        self.healthy_ratio = healthy_ratio
        self.slow_threshold = slow_threshold

    def _draw(self, trace_id: str) -> float:
        digest = hashlib.blake2s(f"{self.seed}:{trace_id}".encode(),
                                 digest_size=8).digest()
        return int.from_bytes(digest, "big") / float(1 << 64)

    def decide(self, event: Dict[str, object]) -> Optional[str]:
        """The retention reason for this event, or ``None`` to drop."""
        status = str(event.get("status"))
        if status in ("failed", "degraded", "rejected"):
            return status
        if event.get("deadline_exceeded"):
            return "deadline"
        latency = float(event.get("latency", 0.0))
        if (self.slow_threshold is not None
                and latency > self.slow_threshold):
            return "slow"
        trace_id = event.get("trace_id")
        if trace_id is not None and \
                self._draw(str(trace_id)) < self.healthy_ratio:
            return "healthy_sample"
        return None


# -- SLO burn-rate monitoring ------------------------------------------------

@dataclass(frozen=True)
class SLOPolicy:
    """An availability objective and the burn windows that guard it.

    ``objective`` is the target good-request fraction (e.g. 0.99 → a
    1% error budget).  Burn rate is (observed error rate) / (budget):
    burning at 1.0 exhausts the budget exactly at the period's end.
    The default thresholds are the SRE-workbook pairing: a fast
    window catching sudden cliffs (page) and a slow window catching
    sustained leaks (ticket).
    """

    objective: float = 0.99
    fast_window: float = 5.0          # seconds (service clock)
    slow_window: float = 60.0
    fast_burn: float = 14.4           # page: budget gone in hours
    slow_burn: float = 6.0            # ticket: budget gone in a day

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be within (0, 1)")

    @property
    def budget(self) -> float:
        return 1.0 - self.objective


class BurnRateMonitor:
    """Edge-triggered burn-rate alerts over a stream of events.

    ``observe`` returns newly *raised* alerts only: an alert fires
    when a window's burn rate crosses its threshold and re-arms once
    it falls back below — no alert storms while a condition holds.
    """

    def __init__(self, policy: Optional[SLOPolicy] = None):
        self.policy = policy or SLOPolicy()
        self._events: List[Tuple[float, bool]] = []   # (t, is_error)
        self._active: Dict[str, bool] = {"page": False, "ticket": False}
        self.alerts: List[Dict[str, object]] = []

    def _is_error(self, event: Dict[str, object]) -> bool:
        return (str(event.get("status")) in _ERROR_STATUSES
                or bool(event.get("deadline_exceeded")))

    def _burn(self, at: float, window: float) -> float:
        horizon = at - window
        total = errors = 0
        for t, is_error in self._events:
            if t > horizon:
                total += 1
                errors += is_error
        if total == 0:
            return 0.0
        return (errors / total) / self.policy.budget

    def observe(self, event: Dict[str, object]) -> List[Dict[str, object]]:
        at = float(event.get("t", 0.0))
        self._events.append((at, self._is_error(event)))
        horizon = at - max(self.policy.fast_window, self.policy.slow_window)
        self._events = [(t, e) for t, e in self._events if t > horizon]
        raised: List[Dict[str, object]] = []
        for severity, window, threshold in (
                ("page", self.policy.fast_window, self.policy.fast_burn),
                ("ticket", self.policy.slow_window, self.policy.slow_burn)):
            burn = self._burn(at, window)
            breached = burn >= threshold
            if breached and not self._active[severity]:
                alert = {"type": "alert", "severity": severity,
                         "t": round(at, 9), "burn_rate": round(burn, 6),
                         "threshold": threshold, "window": window,
                         "objective": self.policy.objective}
                raised.append(alert)
                self.alerts.append(alert)
            self._active[severity] = breached
        return raised


# -- facade ------------------------------------------------------------------

class LiveTelemetry:
    """One sink the server publishes response events into.

    Fans each event out to the ring bus, the rolling aggregator (with
    interval-aligned snapshot emission), the tail sampler (retaining
    the event's span tree when the policy keeps it), and the burn-rate
    monitor.  ``flush()`` closes the final snapshot window;
    ``write_jsonl`` serializes snapshots + alerts + samples.

    Thread-safe: live-mode workers publish concurrently.  All clocks
    are event timestamps, so schedule-mode output is deterministic.
    """

    def __init__(self, bus: Optional[RingBufferBus] = None,
                 aggregator: Optional[SnapshotAggregator] = None,
                 sampler: Optional[TailSamplingPolicy] = None,
                 monitor: Optional[BurnRateMonitor] = None,
                 snapshot_interval: float = 1.0):
        if snapshot_interval <= 0:
            raise ValueError("snapshot_interval must be positive")
        self.bus = bus or RingBufferBus()
        self.aggregator = aggregator or SnapshotAggregator()
        self.sampler = sampler or TailSamplingPolicy()
        self.monitor = monitor or BurnRateMonitor()
        self.snapshot_interval = snapshot_interval
        self.snapshots: List[Dict[str, object]] = []
        self.samples: List[Dict[str, object]] = []
        self._sampled_spans: Dict[str, List[SpanRecord]] = {}
        self._lock = threading.Lock()
        self._window_end: Optional[float] = None
        self._last_t = 0.0

    # -- ingestion -----------------------------------------------------------
    def record(self, event: Dict[str, object],
               spans: Optional[Sequence[SpanRecord]] = None) -> None:
        """Publish one response event (the server's per-response call)."""
        with self._lock:
            at = float(event.get("t", 0.0))
            self._last_t = max(self._last_t, at)
            if self._window_end is None:
                self._window_end = (at // self.snapshot_interval + 1) \
                    * self.snapshot_interval
            while at >= self._window_end:
                self.snapshots.append(
                    self.aggregator.snapshot(self._window_end))
                self._window_end += self.snapshot_interval
            self.bus.publish(event)
            self.aggregator.observe(event)
            self.monitor.observe(event)
            reason = self.sampler.decide(event)
            if reason is not None:
                sample = {"type": "sample", "t": round(at, 9),
                          "trace_id": event.get("trace_id"),
                          "rid": event.get("rid"),
                          "status": event.get("status"),
                          "reason": reason,
                          "spans": len(spans or ())}
                self.samples.append(sample)
                if spans and event.get("trace_id") is not None:
                    self._sampled_spans[str(event["trace_id"])] = list(spans)

    def flush(self) -> None:
        """Emit the final (partial) snapshot window."""
        with self._lock:
            if self._window_end is not None:
                self.snapshots.append(
                    self.aggregator.snapshot(max(self._last_t,
                                                 self._window_end -
                                                 self.snapshot_interval)))
                self._window_end = None

    # -- results -------------------------------------------------------------
    @property
    def alerts(self) -> List[Dict[str, object]]:
        return self.monitor.alerts

    def sampled_trace_ids(self) -> List[str]:
        """Trace ids retained by tail sampling, in retention order."""
        with self._lock:
            return [str(s["trace_id"]) for s in self.samples
                    if s.get("trace_id") is not None]

    def sampled_spans(self, trace_id: str) -> List[SpanRecord]:
        with self._lock:
            return list(self._sampled_spans.get(trace_id, ()))

    def jsonl_lines(self) -> Iterable[str]:
        """Snapshots, alerts, and tail samples as JSONL lines."""
        with self._lock:
            records = (list(self.snapshots) + list(self.monitor.alerts)
                       + list(self.samples))
        for record in records:
            yield json.dumps(record, sort_keys=True)

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            for line in self.jsonl_lines():
                handle.write(line + "\n")
