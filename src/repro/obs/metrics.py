"""Process-wide metrics registry: counters, gauges, histograms.

A Prometheus-flavoured instrument set the runtime layers update as
they execute:

* the tensor dispatcher reports every recorded op
  (:func:`observe_op` -> ``repro_ops_total``, ``repro_flops_total``,
  ``repro_bytes_total``, per-category latency histograms, live-byte
  gauges);
* the fault layer reports injections (:func:`observe_fault` ->
  ``repro_faults_injected_total``);
* the resilient runner reports attempts, retries, and outcomes
  (:func:`observe_attempt` / :func:`observe_retry` /
  :func:`observe_run`).

Collection is **off by default**: the hot-path helpers check the
module-level :data:`ENABLED` flag and return immediately, so the
healthy profiling path pays one attribute load + branch per op
(measured <5% in ``benchmarks/bench_obs_overhead.py``).  Enable with
:func:`enable` (process-wide) or :func:`scoped_runtime` (isolated
registry for one block — what tests and the CLI use).

The thread-local runtime-override stack is private: ``push_runtime``
/ ``pop_runtime`` may only be called from ``__enter__``/``__exit__``
pairs or ``@contextmanager`` functions (lint check RL005), because an
unbalanced stack silently re-routes every later observation.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

LabelKey = Tuple[str, ...]


class Metric:
    """Base class: named instrument with optional label dimensions."""

    kind = ""

    def __init__(self, name: str, help_text: str = "",
                 labelnames: Sequence[str] = ()):
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, object]) -> LabelKey:
        if tuple(sorted(labels)) != tuple(sorted(self.labelnames)):
            raise ValueError(
                f"metric {self.name!r} expects labels "
                f"{self.labelnames}, got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.labelnames)

    def samples(self) -> List[Tuple[LabelKey, float]]:
        """(label values, value) pairs, sorted for deterministic output."""
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "",
                 labelnames: Sequence[str] = ()):
        super().__init__(name, help_text, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.inc_key(self._key(labels), amount)

    def inc_key(self, key: LabelKey, amount: float = 1.0) -> None:
        """Pre-validated fast path for hot loops (key = label values
        in ``labelnames`` order; no validation, no kwargs)."""
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        """Sum across all label combinations."""
        return sum(self._values.values())

    def samples(self) -> List[Tuple[LabelKey, float]]:
        return sorted(self._values.items())

    def clear(self) -> None:
        with self._lock:
            self._values.clear()


class Gauge(Metric):
    """Point-in-time value that can move both ways."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "",
                 labelnames: Sequence[str] = ()):
        super().__init__(name, help_text, labelnames)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._values[self._key(labels)] = float(value)

    def set_key(self, key: LabelKey, value: float) -> None:
        """Pre-validated fast path for hot loops."""
        with self._lock:
            self._values[key] = value

    def set_max(self, value: float, **labels: object) -> None:
        """Keep the high-water mark (peak gauges)."""
        self.set_max_key(self._key(labels), float(value))

    def set_max_key(self, key: LabelKey, value: float) -> None:
        """Pre-validated high-water-mark fast path."""
        with self._lock:
            if value > self._values.get(key, float("-inf")):
                self._values[key] = value

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(self._key(labels), 0.0)

    def samples(self) -> List[Tuple[LabelKey, float]]:
        return sorted(self._values.items())

    def clear(self) -> None:
        with self._lock:
            self._values.clear()


#: Default latency buckets: 1µs .. 10s, decade-and-half steps.
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


class Histogram(Metric):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = LATENCY_BUCKETS):
        super().__init__(name, help_text, labelnames)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: object) -> None:
        self.observe_key(self._key(labels), value)

    def observe_key(self, key: LabelKey, value: float) -> None:
        """Pre-validated fast path for hot loops."""
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts.setdefault(
                    key, [0] * len(self.buckets))
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
                    break
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: object) -> int:
        return self._totals.get(self._key(labels), 0)

    def percentile(self, q: float, **labels: object) -> float:
        """Estimated ``q``-th percentile (``q`` in (0, 100]).

        Linear interpolation inside the bucket the target rank falls
        into (Prometheus ``histogram_quantile`` semantics).  Returns
        0.0 for an empty series and ``+inf`` when the rank lands in
        the overflow region above the last finite bucket.
        """
        return self.percentile_key(self._key(labels), q)

    def percentile_key(self, key: LabelKey, q: float) -> float:
        """Pre-validated percentile (key = label values in order)."""
        if not 0.0 < q <= 100.0:
            raise ValueError(f"percentile q must be in (0, 100], got {q}")
        with self._lock:
            total = self._totals.get(key, 0)
            counts = list(self._counts.get(key, ()))
        if total <= 0:
            return 0.0
        target = q / 100.0 * total
        running, prev_bound = 0, 0.0
        for bound, count in zip(self.buckets, counts):
            if count and running + count >= target:
                frac = (target - running) / count
                return prev_bound + (bound - prev_bound) * frac
            running += count
            prev_bound = bound
        # rank falls above the last finite bucket (overflow region)
        return float("inf")

    def summary(self, quantiles: Sequence[float] = (50.0, 95.0, 99.0),
                **labels: object) -> Dict[str, float]:
        """``{count, sum, mean, p50, p95, p99}`` for one label set."""
        key = self._key(labels)
        count = self._totals.get(key, 0)
        total = self._sums.get(key, 0.0)
        out: Dict[str, float] = {
            "count": float(count),
            "sum": total,
            "mean": total / count if count else 0.0,
        }
        for q in quantiles:
            out[f"p{q:g}"] = self.percentile_key(key, q)
        return out

    def sum(self, **labels: object) -> float:
        return self._sums.get(self._key(labels), 0.0)

    def cumulative_counts(self, key: LabelKey) -> List[int]:
        """Bucket counts as Prometheus cumulative ``le`` counts."""
        counts = self._counts.get(key, [0] * len(self.buckets))
        out, running = [], 0
        for count in counts:
            running += count
            out.append(running)
        return out

    def samples(self) -> List[Tuple[LabelKey, float]]:
        return sorted((key, float(total))
                      for key, total in self._totals.items())

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()
            self._sums.clear()
            self._totals.clear()


class MetricsRegistry:
    """Ordered collection of uniquely named metrics."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        # registries are shared (the process registry, a runtime's):
        # the name-uniqueness check-then-insert must be atomic
        self._reg_lock = threading.Lock()

    def register(self, metric: Metric) -> Metric:
        with self._reg_lock:
            if metric.name in self._metrics:
                raise ValueError(
                    f"metric {metric.name!r} already registered")
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self.register(Counter(name, help_text, labelnames))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self.register(Gauge(name, help_text, labelnames))  # type: ignore[return-value]

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        return self.register(
            Histogram(name, help_text, labelnames, buckets))  # type: ignore[return-value]

    def get(self, name: str) -> Metric:
        return self._metrics[name]

    def metrics(self) -> List[Metric]:
        return list(self._metrics.values())

    def reset(self) -> None:
        """Zero every metric (registrations are kept)."""
        for metric in self._metrics.values():
            metric.clear()

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe dump: metric -> {labels repr -> value}."""
        out: Dict[str, object] = {}
        for metric in self.metrics():
            values = {",".join(key) if key else "": value
                      for key, value in metric.samples()}
            out[metric.name] = {"kind": metric.kind,
                                "help": metric.help_text,
                                "values": values}
        return out


class RuntimeMetrics:
    """The suite's built-in instruments over one registry."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.enabled = False
        reg = self.registry
        self.ops_total = reg.counter(
            "repro_ops_total", "recorded tensor ops", ("category",))
        self.flops_total = reg.counter(
            "repro_flops_total", "recorded floating-point operations")
        self.bytes_total = reg.counter(
            "repro_bytes_total", "recorded memory traffic (read+written)")
        self.live_bytes = reg.gauge(
            "repro_live_bytes", "live tensor bytes after the last op")
        self.peak_live_bytes = reg.gauge(
            "repro_peak_live_bytes", "high-water mark of live bytes")
        self.op_latency = reg.histogram(
            "repro_op_latency_seconds",
            "measured wall time per recorded op", ("category",))
        self.faults_injected_total = reg.counter(
            "repro_faults_injected_total", "fault injections applied",
            ("kind",))
        self.attempts_total = reg.counter(
            "repro_attempts_total", "resilient-runner attempts",
            ("workload",))
        self.retries_total = reg.counter(
            "repro_retries_total", "resilient-runner retries",
            ("workload",))
        self.runs_total = reg.counter(
            "repro_runs_total", "resilient-runner outcomes",
            ("workload", "status"))
        # per-category label keys, interned once (hot-path allocation)
        self._cat_keys: Dict[str, LabelKey] = {}
        # one lock for the whole per-op update: six separate instrument
        # locks cost ~3x more than the arithmetic they protect
        self._op_lock = threading.Lock()

    def observe_op(self, category: str, seconds: float, flops: float,
                   nbytes: float, live_bytes: float) -> None:
        """Record one dispatched op (dispatcher hot path).

        Updates the op-derived instruments' storage directly under a
        single runtime-level lock — one interned key tuple per
        category, no kwargs, no label validation, one lock round-trip
        — so enabling collection stays inside the <5% overhead budget
        (``benchmarks/bench_obs_overhead.py``).  This method is the
        sole hot-path writer of these instruments; everything else
        (runner counters, user code) goes through the validated APIs.
        """
        # poisoned counters can be NaN/negative; clamp off-trace
        if not (flops == flops and flops > 0.0):
            flops = 0.0
        if nbytes < 0.0:
            nbytes = 0.0
        hist = self.op_latency
        with self._op_lock:
            key = self._cat_keys.get(category)
            if key is None:
                key = self._cat_keys.setdefault(category, (category,))
            values = self.ops_total._values
            values[key] = values.get(key, 0.0) + 1.0
            values = self.flops_total._values
            values[()] = values.get((), 0.0) + flops
            values = self.bytes_total._values
            values[()] = values.get((), 0.0) + nbytes
            counts = hist._counts.get(key)
            if counts is None:
                counts = hist._counts.setdefault(
                    key, [0] * len(hist.buckets))
            for i, bound in enumerate(hist.buckets):
                if seconds <= bound:
                    counts[i] += 1
                    break
            hist._sums[key] = hist._sums.get(key, 0.0) + seconds
            hist._totals[key] = hist._totals.get(key, 0) + 1
            values = self.live_bytes._values
            values[()] = live_bytes
            values = self.peak_live_bytes._values
            if live_bytes > values.get((), float("-inf")):
                values[()] = live_bytes

    def observe_op_group(self, category: str, count: int,
                         seconds_total: float, flops_total: float,
                         nbytes_total: float, live_bytes: float,
                         peak_live_bytes: float) -> None:
        """Record ``count`` ops of one category in a single update.

        The compiled execution tier (``repro.compile.executor``)
        flushes one pre-aggregated row per plan group instead of
        calling :meth:`observe_op` per op.  Counter totals (ops,
        flops, bytes), histogram count/sum, and the live-byte gauges
        land exactly where ``count`` individual calls would put them;
        the only documented difference is the latency histogram's
        bucket placement, which files all ``count`` observations at
        the group's *mean* per-op latency (per-op walls are not
        replayed individually).  Latency buckets are measured, not
        part of the deterministic bit-exactness contract.
        """
        if count <= 0:
            return
        if not (flops_total == flops_total and flops_total > 0.0):
            flops_total = 0.0
        if nbytes_total < 0.0:
            nbytes_total = 0.0
        mean_seconds = seconds_total / count
        hist = self.op_latency
        with self._op_lock:
            key = self._cat_keys.get(category)
            if key is None:
                key = self._cat_keys.setdefault(category, (category,))
            values = self.ops_total._values
            values[key] = values.get(key, 0.0) + float(count)
            values = self.flops_total._values
            values[()] = values.get((), 0.0) + flops_total
            values = self.bytes_total._values
            values[()] = values.get((), 0.0) + nbytes_total
            counts = hist._counts.get(key)
            if counts is None:
                counts = hist._counts.setdefault(
                    key, [0] * len(hist.buckets))
            for i, bound in enumerate(hist.buckets):
                if mean_seconds <= bound:
                    counts[i] += count
                    break
            hist._sums[key] = hist._sums.get(key, 0.0) + seconds_total
            hist._totals[key] = hist._totals.get(key, 0) + count
            values = self.live_bytes._values
            values[()] = live_bytes
            values = self.peak_live_bytes._values
            if peak_live_bytes > values.get((), float("-inf")):
                values[()] = peak_live_bytes


#: Process-default runtime (disabled until :func:`enable`).
_RUNTIME = RuntimeMetrics()

#: Fast-path flag consulted by the dispatcher before any function
#: call into this module's bookkeeping.  True whenever *any* runtime
#: (default or scoped) is currently enabled.
ENABLED = False

_enabled_count = 0
_enabled_lock = threading.Lock()

_state = threading.local()


def _runtime_stack() -> List[RuntimeMetrics]:
    if not hasattr(_state, "stack"):
        _state.stack = []
    return _state.stack


def active_runtime() -> RuntimeMetrics:
    """The innermost scoped runtime, or the process default."""
    stack = _runtime_stack()
    return stack[-1] if stack else _RUNTIME


def _count_enabled(delta: int) -> None:
    global ENABLED, _enabled_count
    with _enabled_lock:
        _enabled_count = max(0, _enabled_count + delta)
        ENABLED = _enabled_count > 0


def enable() -> None:
    """Turn on collection for the process-default runtime."""
    if not _RUNTIME.enabled:
        _RUNTIME.enabled = True
        _count_enabled(+1)


def disable() -> None:
    """Turn collection back off for the process-default runtime."""
    if _RUNTIME.enabled:
        _RUNTIME.enabled = False
        _count_enabled(-1)


def reset() -> None:
    """Zero the process-default runtime's metrics."""
    _RUNTIME.registry.reset()


def push_runtime(runtime: RuntimeMetrics) -> None:
    """Install a runtime override for this thread."""
    _runtime_stack().append(runtime)
    if runtime.enabled:
        _count_enabled(+1)


def pop_runtime(runtime: RuntimeMetrics) -> None:
    """Remove ``runtime``; it must be the innermost override."""
    stack = _runtime_stack()
    if not stack or stack[-1] is not runtime:  # pragma: no cover - misuse
        raise RuntimeError("metrics runtimes exited out of order")
    stack.pop()
    if runtime.enabled:
        _count_enabled(-1)


@contextmanager
def scoped_runtime(enabled: bool = True) -> Iterator[RuntimeMetrics]:
    """Fresh, isolated :class:`RuntimeMetrics` for the block.

    The CLI and tests use this so one measurement never leaks into
    another (or into the process-default registry).

    Isolation is **thread-local**: a worker thread spawned inside the
    scope does not inherit the override, so its observations fall
    through to the process default.  Worker pools (``repro.serve``)
    must re-install the owning scope's runtime on each worker thread
    with :func:`bind_runtime`.
    """
    runtime = RuntimeMetrics()
    runtime.enabled = enabled
    push_runtime(runtime)
    try:
        yield runtime
    finally:
        pop_runtime(runtime)


@contextmanager
def bind_runtime(runtime: RuntimeMetrics) -> Iterator[RuntimeMetrics]:
    """Install an *existing* runtime as this thread's override.

    The multi-thread companion of :func:`scoped_runtime`: the runtime
    override stack is thread-local, so a worker thread created inside
    a scoped block would otherwise report to the process default and
    the scope's registry would silently miss every op the worker
    dispatched.  A pool worker wraps its run loop::

        with metrics.bind_runtime(shared_runtime):
            ... execute requests ...

    Instrument updates are lock-protected, so any number of workers
    may bind the same runtime concurrently.
    """
    push_runtime(runtime)
    try:
        yield runtime
    finally:
        pop_runtime(runtime)


# -- hot-path observation helpers (called by runtime layers) ----------------

def observe_op(category: str, seconds: float, flops: float,
               nbytes: float, live_bytes: float) -> None:
    """Record one dispatched op (dispatcher hot path)."""
    stack = _runtime_stack()
    runtime = stack[-1] if stack else _RUNTIME
    if runtime.enabled:
        runtime.observe_op(category, seconds, flops, nbytes, live_bytes)


def observe_op_group(category: str, count: int, seconds_total: float,
                     flops_total: float, nbytes_total: float,
                     live_bytes: float, peak_live_bytes: float) -> None:
    """Record a pre-aggregated group of ops (compiled-replay path)."""
    stack = _runtime_stack()
    runtime = stack[-1] if stack else _RUNTIME
    if runtime.enabled:
        runtime.observe_op_group(category, count, seconds_total,
                                 flops_total, nbytes_total, live_bytes,
                                 peak_live_bytes)


def observe_fault(kind: str) -> None:
    """Record one applied fault injection."""
    runtime = active_runtime()
    if runtime.enabled:
        runtime.faults_injected_total.inc(1.0, kind=kind)


def observe_attempt(workload: str) -> None:
    runtime = active_runtime()
    if runtime.enabled:
        runtime.attempts_total.inc(1.0, workload=workload)


def observe_retry(workload: str) -> None:
    runtime = active_runtime()
    if runtime.enabled:
        runtime.retries_total.inc(1.0, workload=workload)


def observe_run(workload: str, status: str) -> None:
    runtime = active_runtime()
    if runtime.enabled:
        runtime.runs_total.inc(1.0, workload=workload, status=status)
