"""Run manifests: one durable record per profiled run.

A :class:`RunRecord` is the between-runs unit of observability: a
compact, append-only summary (workload, params, seed, git sha, a
digest of the per-phase/per-category counters, projected per-phase
latency, peak memory) written into a ``runs.jsonl`` database.
:mod:`repro.obs.compare` diffs records to flag drift and regressions.

The gating metrics are *analytic* — counters and device-model
projections, not wall clock — so two runs of the same code at the
same seed produce identical records (up to timestamp/host fields,
which are informational and never compared).
"""

from __future__ import annotations

import hashlib
import json
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Dict, List, Optional

from repro.core.profiler import Trace
from repro.core.serialize import safe_json_value
from repro.core.taxonomy import CATEGORY_ORDER
from repro.hwsim.device import DeviceSpec
from repro.hwsim.devices import RTX_2080TI

#: bump when the record layout changes.  Version 2 adds
#: ``category_kstats`` (per-category analytic kernel counters from
#: :mod:`repro.obs.kstats`); version-1 records load with an empty map.
RECORD_VERSION = 2

#: the synthesized counters gated by drift checks, as
#: :class:`repro.hwsim.kernels.KernelCounters` field names
KSTATS_COUNTER_FIELDS = (
    "compute_throughput_pct", "alu_utilization_pct",
    "l1_throughput_pct", "l2_throughput_pct",
    "l1_hit_rate_pct", "l2_hit_rate_pct",
    "dram_bw_utilization_pct")

#: default run database filename
DEFAULT_DB = "runs.jsonl"


def git_sha(short: bool = True) -> str:
    """Current git commit sha, or ``""`` outside a repository."""
    cmd = ["git", "rev-parse"] + (["--short"] if short else []) + ["HEAD"]
    try:
        out = subprocess.run(cmd, capture_output=True, text=True,
                             timeout=5.0)
    except (OSError, subprocess.SubprocessError):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def counters_digest(trace: Trace) -> str:
    """Stable sha256 over the trace's analytic counters.

    Covers per-(phase, category) event counts, FLOPs, and bytes — the
    exact quantities every figure is computed from — so two traces
    with the same digest produce identical characterization results.
    """
    buckets: Dict[str, List[float]] = {}
    for event in trace.events:
        key = f"{event.phase}/{event.category.value}"
        bucket = buckets.setdefault(key, [0.0, 0.0, 0.0])
        bucket[0] += 1
        bucket[1] += event.flops
        bucket[2] += event.total_bytes
    canonical = json.dumps(
        {key: buckets[key] for key in sorted(buckets)},
        separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class RunRecord:
    """Summary of one profiled run, durable across processes."""

    workload: str
    seed: Optional[int] = None
    params: Dict[str, object] = field(default_factory=dict)
    created: str = ""
    git_sha: str = ""
    device: str = ""
    events: int = 0
    total_flops: float = 0.0
    total_bytes: float = 0.0
    wall_time_s: float = 0.0
    peak_live_bytes: float = 0.0
    projected_latency_s: float = 0.0
    phase_latency_s: Dict[str, float] = field(default_factory=dict)
    #: per-category analytic kernel counters
    #: (``category -> counter field -> percent``), synthesized by
    #: :func:`repro.obs.kstats.kstats_by_category`; deterministic per
    #: seed, so drift checks can gate on them.  Empty for v1 records.
    category_kstats: Dict[str, Dict[str, float]] = field(
        default_factory=dict)
    counters_digest: str = ""
    version: int = RECORD_VERSION

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "workload": self.workload,
            "seed": self.seed,
            "params": {k: safe_json_value(v)
                       for k, v in self.params.items()},
            "created": self.created,
            "git_sha": self.git_sha,
            "device": self.device,
            "events": self.events,
            "total_flops": self.total_flops,
            "total_bytes": self.total_bytes,
            "wall_time_s": self.wall_time_s,
            "peak_live_bytes": self.peak_live_bytes,
            "projected_latency_s": self.projected_latency_s,
            "phase_latency_s": dict(self.phase_latency_s),
            "category_kstats": {cat: dict(counters) for cat, counters
                                in self.category_kstats.items()},
            "counters_digest": self.counters_digest,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "RunRecord":
        return cls(
            workload=str(raw.get("workload", "")),
            seed=raw.get("seed"),  # type: ignore[arg-type]
            params=dict(raw.get("params", {})),  # type: ignore[arg-type]
            created=str(raw.get("created", "")),
            git_sha=str(raw.get("git_sha", "")),
            device=str(raw.get("device", "")),
            events=int(raw.get("events", 0)),  # type: ignore[arg-type]
            total_flops=float(raw.get("total_flops", 0.0)),  # type: ignore[arg-type]
            total_bytes=float(raw.get("total_bytes", 0.0)),  # type: ignore[arg-type]
            wall_time_s=float(raw.get("wall_time_s", 0.0)),  # type: ignore[arg-type]
            peak_live_bytes=float(raw.get("peak_live_bytes", 0.0)),  # type: ignore[arg-type]
            projected_latency_s=float(
                raw.get("projected_latency_s", 0.0)),  # type: ignore[arg-type]
            phase_latency_s={str(k): float(v) for k, v in
                             dict(raw.get("phase_latency_s", {})).items()},  # type: ignore[arg-type]
            category_kstats={
                str(cat): {str(k): float(v)
                           for k, v in dict(counters).items()}
                for cat, counters
                in dict(raw.get("category_kstats", {})).items()},  # type: ignore[arg-type]
            counters_digest=str(raw.get("counters_digest", "")),
            version=int(raw.get("version", RECORD_VERSION)),  # type: ignore[arg-type]
        )

    def label(self) -> str:
        sha = f"@{self.git_sha}" if self.git_sha else ""
        return f"{self.workload}{sha} ({self.created or 'undated'})"


def record_from_trace(trace: Trace,
                      device: DeviceSpec = RTX_2080TI,
                      sha: Optional[str] = None) -> RunRecord:
    """Build the :class:`RunRecord` for one profiled trace."""
    from repro.core.analysis import latency_breakdown  # deferred (cycle)
    from repro.obs.kstats import kstats_by_category  # deferred (cycle)
    breakdown = latency_breakdown(trace, device)
    category_kstats = {
        stats.label: {name: float(getattr(stats.counters, name))
                      for name in KSTATS_COUNTER_FIELDS}
        for stats in kstats_by_category(trace, device)}
    metadata = trace.metadata
    seed = metadata.get("seed")
    params = {key: value for key, value in metadata.items()
              if key not in ("result",)}
    peak = metadata.get("peak_live_bytes", trace.peak_live_bytes)
    return RunRecord(
        workload=trace.workload,
        seed=seed if isinstance(seed, int) else None,
        params=params,
        created=datetime.now(timezone.utc).isoformat(timespec="seconds"),
        git_sha=sha if sha is not None else git_sha(),
        device=device.name,
        events=len(trace.events),
        total_flops=float(trace.total_flops),
        total_bytes=float(trace.total_bytes),
        wall_time_s=float(trace.total_wall_time),
        peak_live_bytes=float(peak),  # type: ignore[arg-type]
        projected_latency_s=float(breakdown.total_time),
        phase_latency_s={phase or "untagged": float(seconds)
                         for phase, seconds
                         in breakdown.phase_times.items()},
        category_kstats=category_kstats,
        counters_digest=counters_digest(trace),
    )


def append_record(record: RunRecord, path: str = DEFAULT_DB) -> None:
    """Append ``record`` to the run database at ``path``."""
    with open(path, "a") as handle:
        handle.write(json.dumps(record.to_dict()) + "\n")


def load_records(path: str) -> List[RunRecord]:
    """All records in a ``runs.jsonl`` database, oldest first."""
    records: List[RunRecord] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(RunRecord.from_dict(json.loads(line)))
    return records


def load_record(path: str) -> RunRecord:
    """One record: a single-record ``.json`` file or the newest entry
    of a ``runs.jsonl`` database."""
    with open(path) as handle:
        content = handle.read().strip()
    if not content:
        raise ValueError(f"{path}: empty run-record file")
    try:  # a single (possibly pretty-printed) JSON document
        return RunRecord.from_dict(json.loads(content))
    except json.JSONDecodeError:
        pass
    lines = [line for line in content.splitlines() if line.strip()]
    return RunRecord.from_dict(json.loads(lines[-1]))


def save_record(record: RunRecord, path: str) -> None:
    """Write one record as a standalone JSON file (CI baselines)."""
    with open(path, "w") as handle:
        json.dump(record.to_dict(), handle, indent=1, sort_keys=True)
        handle.write("\n")


def category_totals(trace: Trace) -> Dict[str, Dict[str, float]]:
    """Per-category event/FLOP/byte totals (BENCH-trajectory helper)."""
    out: Dict[str, Dict[str, float]] = {}
    for category in CATEGORY_ORDER:
        sub = trace.by_category(category)
        if len(sub):
            out[category.value] = {
                "events": float(len(sub)),
                "flops": float(sub.total_flops),
                "bytes": float(sub.total_bytes),
            }
    return out
