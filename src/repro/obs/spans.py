"""Thread-local span tracing: the hierarchical timeline under a run.

A *span* is a named interval with a start/end timestamp, free-form
attributes, and a parent link — the building block every tracing
system (OpenTelemetry, Chrome tracing, Perfetto) shares.  The suite
opens spans at three altitudes:

* :class:`~repro.tensor.context.ProfileContext` opens a root
  ``profile:<workload>`` span and collects every span finished inside
  it onto ``trace.spans``;
* ``T.phase(...)`` / ``T.stage(...)`` open ``phase:*`` / ``stage:*``
  child spans, so the flat op list gains a tree above it;
* the resilient runner opens ``run:*`` / ``attempt#N`` /
  ``health_check`` / ``backoff`` spans around workload execution.

All timestamps are offsets from one process-wide monotonic epoch
(:func:`now`), so runner-level spans and op events recorded deep
inside a profiled workload share a single timeline and can be merged
by the exporters in :mod:`repro.obs.chrome` / :mod:`repro.obs.jsonl`.

When no collector is installed, :func:`span` is a no-op that never
touches the stacks — library code stays usable untraced, mirroring
how ops dispatched outside a profiling context skip bookkeeping.

The thread-local stacks here are private: ``push_span`` /
``pop_span`` / ``install_collector`` / ``uninstall_collector`` may
only be called from ``__enter__``/``__exit__`` pairs or
``@contextmanager`` functions (enforced by lint check RL005), because
an unbalanced stack corrupts parent links for every span that
follows.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.obs.clock import perf_s
from repro.obs.tracectx import (TraceContext, current_trace_context,
                                trace_scope)

#: Process-wide monotonic epoch.  Every span and op timestamp in this
#: process is a ``perf_counter`` offset from this origin (read through
#: the approved clock helpers in :mod:`repro.obs.clock`; RL107).
_EPOCH = perf_s()


def now() -> float:
    """Seconds since the process-wide tracing epoch (monotonic)."""
    return perf_s() - _EPOCH


@dataclass
class SpanRecord:
    """One finished interval of the hierarchical timeline."""

    sid: int
    parent: Optional[int]
    name: str
    start: float
    end: float = 0.0
    attrs: Dict[str, object] = field(default_factory=dict)
    #: Trace this span belongs to (ambient TraceContext at open time);
    #: ``None`` for spans opened outside any request scope.
    trace_id: Optional[str] = None

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "sid": self.sid, "parent": self.parent,
            "name": self.name, "start": self.start, "end": self.end,
            "attrs": dict(self.attrs)}
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        return out

    @classmethod
    def from_dict(cls, raw: Dict[str, object]) -> "SpanRecord":
        trace_id = raw.get("trace_id")
        return cls(sid=int(raw["sid"]),
                   parent=(None if raw.get("parent") is None
                           else int(raw["parent"])),  # type: ignore[arg-type]
                   name=str(raw["name"]),
                   start=float(raw["start"]),  # type: ignore[arg-type]
                   end=float(raw.get("end", 0.0)),  # type: ignore[arg-type]
                   attrs=dict(raw.get("attrs", {})),  # type: ignore[arg-type]
                   trace_id=(None if trace_id is None else str(trace_id)))


_state = threading.local()

# Span ids are allocated from one process-wide counter.  A per-thread
# counter (the original design) hands sid 0 to the first span of
# *every* thread, so a runner span on the main thread and a profile
# span on a worker thread collide — and once serving worker pools run
# workloads concurrently, per-op sid attribution becomes ambiguous.
# The global counter keeps sids unique across threads while staying
# deterministic for sequential runs: it resets to zero when the last
# collector leaves and no span is open anywhere in the process.
_sid_lock = threading.Lock()
_sid_counter = 0
_open_spans = 0
_active_collectors = 0


def _span_stack() -> List[SpanRecord]:
    if not hasattr(_state, "spans"):
        _state.spans = []
    return _state.spans


def _collector_stack() -> List[List[SpanRecord]]:
    if not hasattr(_state, "collectors"):
        _state.collectors = []
    return _state.collectors


def _adjust_counts(open_delta: int = 0, collector_delta: int = 0) -> None:
    """Track process-wide open spans / installed collectors.

    When both reach zero the sid counter resets, so successive
    independent runs number their spans identically (deterministic
    exported timelines) while overlapping runs never share a sid.
    """
    global _sid_counter, _open_spans, _active_collectors
    with _sid_lock:
        _open_spans = max(0, _open_spans + open_delta)
        _active_collectors = max(0, _active_collectors + collector_delta)
        if _open_spans == 0 and _active_collectors == 0:
            _sid_counter = 0


def tracing_active() -> bool:
    """True when at least one span collector is installed."""
    return bool(_collector_stack())


def current_span() -> Optional[SpanRecord]:
    """The innermost open span on this thread, or ``None``."""
    stack = _span_stack()
    return stack[-1] if stack else None


def _next_sid() -> int:
    global _sid_counter
    with _sid_lock:
        sid = _sid_counter
        _sid_counter += 1
        return sid


def push_span(name: str,
              attrs: Optional[Dict[str, object]] = None) -> SpanRecord:
    """Open a span (internal; use :func:`span` or the tensor contexts).

    The span is stamped with the ambient :class:`TraceContext`'s
    trace id (if one is in scope on this thread), which is how every
    span under a ``serve:batch`` execution — runner attempts, profile
    phases, op stages — becomes linkable to the request that caused
    it without any explicit plumbing.
    """
    stack = _span_stack()
    parent = stack[-1].sid if stack else None
    ctx = current_trace_context()
    record = SpanRecord(sid=_next_sid(), parent=parent, name=name,
                        start=now(), attrs=dict(attrs or {}),
                        trace_id=(ctx.trace_id if ctx is not None else None))
    stack.append(record)
    _adjust_counts(open_delta=+1)
    return record


def pop_span(record: SpanRecord) -> None:
    """Close ``record``; it must be the innermost open span."""
    stack = _span_stack()
    if not stack or stack[-1] is not record:  # pragma: no cover - misuse
        raise RuntimeError("spans exited out of order")
    stack.pop()
    record.end = now()
    # every active collector receives the span, so an outer
    # (runner-level) collector also sees workload-internal spans
    for sink in _collector_stack():
        sink.append(record)
    _adjust_counts(open_delta=-1)


def install_collector(sink: List[SpanRecord]) -> None:
    """Install ``sink`` to receive every span finished on this thread."""
    _collector_stack().append(sink)
    _adjust_counts(collector_delta=+1)


def uninstall_collector(sink: List[SpanRecord]) -> None:
    """Remove ``sink``; it must be the innermost installed collector.

    When the last collector leaves and no span is open anywhere in the
    process, the (process-global) span-id counter resets so successive
    independent runs number their spans identically — exported
    timelines stay deterministic per seed — while concurrent runs on
    worker threads keep allocating unique sids.
    """
    stack = _collector_stack()
    if not stack or stack[-1] is not sink:  # pragma: no cover - misuse
        raise RuntimeError("span collectors exited out of order")
    stack.pop()
    _adjust_counts(collector_delta=-1)


class SpanCollector:
    """Context manager collecting every span finished while installed.

    Usage::

        with SpanCollector() as collector:
            ... run traced code ...
        tree = span_roots(collector.spans)
    """

    def __init__(self) -> None:
        self.spans: List[SpanRecord] = []

    def __enter__(self) -> "SpanCollector":
        install_collector(self.spans)
        return self

    def __exit__(self, *exc_info: object) -> None:
        uninstall_collector(self.spans)


@contextmanager
def span(name: str, ctx: Optional[TraceContext] = None,
         **attrs: object) -> Iterator[Optional[SpanRecord]]:
    """Open a child span for the block; no-op when tracing is inactive.

    Yields the open :class:`SpanRecord` (or ``None`` on the no-op
    path) so callers can attach attributes discovered mid-flight::

        with obs.span("attempt", workload=name) as rec:
            ...
            if rec is not None:
                rec.attrs["status"] = "ok"

    Passing ``ctx=`` additionally makes that :class:`TraceContext`
    ambient for the block (even when tracing is inactive), so this
    span *and every span opened inside the block* carry its trace id.
    Serve-path spans are required to pass it (lint check RL106).
    """
    if ctx is not None:
        with trace_scope(ctx):
            with span(name, **attrs) as record:
                yield record
        return
    if not tracing_active():
        yield None
        return
    record = push_span(name, attrs)
    try:
        yield record
    finally:
        pop_span(record)


def span_roots(spans: List[SpanRecord]) -> List[SpanRecord]:
    """Root spans of a collected list (parent missing from the list)."""
    sids = {record.sid for record in spans}
    return [record for record in spans
            if record.parent is None or record.parent not in sids]


def children_of(spans: List[SpanRecord],
                parent: SpanRecord) -> List[SpanRecord]:
    """Direct children of ``parent`` within ``spans``, by start time."""
    return sorted((r for r in spans if r.parent == parent.sid),
                  key=lambda r: (r.start, r.sid))


def render_spans(spans: List[SpanRecord]) -> str:
    """Indented text rendering of a span tree (debugging aid)."""
    lines: List[str] = []

    def walk(record: SpanRecord, depth: int) -> None:
        attrs = " ".join(f"{k}={v}" for k, v in sorted(record.attrs.items()))
        lines.append(f"{'  ' * depth}{record.name} "
                     f"[{record.duration * 1e3:.3f} ms]"
                     + (f" {attrs}" if attrs else ""))
        for child in children_of(spans, record):
            walk(child, depth + 1)

    for root in sorted(span_roots(spans), key=lambda r: (r.start, r.sid)):
        walk(root, 0)
    return "\n".join(lines)
