"""JSONL structured event log: durable, streamable, re-importable.

One JSON object per line:

* a ``meta`` header (workload, trace metadata, format version),
* one ``op`` line per :class:`~repro.core.profiler.TraceEvent`
  (the same field layout as :mod:`repro.core.serialize`),
* one ``span`` line per collected
  :class:`~repro.obs.spans.SpanRecord`.

Unlike the single-document trace archive, a JSONL log can be appended
while a run is in flight, tailed by external collectors, and
truncated without losing every earlier record — the shape log
shippers (fluentd, vector, Loki) expect.  :func:`read_jsonl`
reconstructs an equivalent :class:`Trace` (identical per-phase and
per-category totals) including its span tree.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List

from repro.core.profiler import Trace
from repro.core.serialize import (event_from_dict, event_to_dict,
                                  safe_json_value)
from repro.obs.spans import SpanRecord

#: bump when the line layout changes
JSONL_VERSION = 2

#: versions :func:`trace_from_jsonl_lines` can still load.  Version 1
#: logs predate per-span counter attribution; their op lines load with
#: ``sid=None`` (handled by ``event_from_dict``).
SUPPORTED_JSONL_VERSIONS = (1, 2)


def trace_to_jsonl_lines(trace: Trace) -> Iterator[str]:
    """Yield the log lines for ``trace`` (no trailing newlines)."""
    yield json.dumps({
        "type": "meta",
        "version": JSONL_VERSION,
        "workload": trace.workload,
        "metadata": {key: safe_json_value(value)
                     for key, value in trace.metadata.items()},
    })
    for event in trace.events:
        record: Dict[str, object] = {"type": "op"}
        record.update(event_to_dict(event))
        yield json.dumps(record)
    for span in trace.spans:
        if isinstance(span, SpanRecord):
            record = {"type": "span"}
            record.update(span.to_dict())
            yield json.dumps(record)


def trace_to_jsonl(trace: Trace) -> str:
    """The whole log as one string (trailing newline included)."""
    return "\n".join(trace_to_jsonl_lines(trace)) + "\n"


def write_jsonl(trace: Trace, path: str) -> None:
    """Write the JSONL event log for ``trace`` to ``path``."""
    with open(path, "w") as handle:
        for line in trace_to_jsonl_lines(trace):
            handle.write(line + "\n")


def trace_from_jsonl_lines(lines: List[str]) -> Trace:
    """Rebuild a :class:`Trace` (events + spans) from log lines."""
    trace = Trace()
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("type")
        if kind == "meta":
            version = record.get("version")
            if version not in SUPPORTED_JSONL_VERSIONS:
                raise ValueError(
                    f"unsupported JSONL log version: {version!r} "
                    f"(supported: {SUPPORTED_JSONL_VERSIONS})")
            trace.workload = record.get("workload", "")
            trace.metadata = dict(record.get("metadata", {}))
        elif kind == "op":
            trace.append(event_from_dict(record))
        elif kind == "span":
            trace.spans.append(SpanRecord.from_dict(record))
        else:
            raise ValueError(
                f"line {number}: unknown record type {kind!r}")
    return trace


def read_jsonl(path: str) -> Trace:
    """Read a JSONL event log written by :func:`write_jsonl`."""
    with open(path) as handle:
        return trace_from_jsonl_lines(handle.readlines())
