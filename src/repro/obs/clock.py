"""Approved clock helpers: the only place raw clocks are read.

Every wall-time measurement in ``src/repro`` routes through this
module (enforced by lint check RL107).  Centralizing the raw
``time.*`` reads buys three things:

* **one clock discipline** — measurement code cannot accidentally mix
  ``time.time()`` (non-monotonic, NTP-skewed) with ``perf_counter``
  offsets; the helpers only expose monotonic clocks;
* **self-profiling stays honest** — the dispatch-overhead ledger
  (:mod:`repro.obs.selfprof`) times *components of the dispatcher
  itself* with :func:`perf_ns`; if other code read raw clocks through
  different paths, probe pairing could not guarantee that component
  times tile the measured total;
* **auditability** — ``grep perf_counter src/repro`` returning only
  this file is itself a reviewable invariant (and is what RL107
  checks statically).

The process-wide tracing epoch lives in :mod:`repro.obs.spans`
(:func:`repro.obs.spans.now`), built on :func:`perf_s`; use that for
timeline timestamps.  Use :func:`perf_s` / :func:`perf_ns` for plain
interval measurement where an epoch offset is not needed.
"""

from __future__ import annotations

import time

__all__ = ["perf_s", "perf_ns"]


def perf_s() -> float:
    """Monotonic high-resolution clock in seconds (``perf_counter``)."""
    return time.perf_counter()


def perf_ns() -> int:
    """Monotonic high-resolution clock in integer nanoseconds.

    The probe clock of the self-profiling ledger: integer ns make the
    component-tiling invariant exact (sums of ``int`` deltas telescope
    with no float rounding).
    """
    return time.perf_counter_ns()
