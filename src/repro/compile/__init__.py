"""``repro.compile``: trace-derived plan compiler + compiled executor.

Capture -> optimize -> execute (ROADMAP item 1):

* :mod:`repro.compile.capture` records one instrumented eager run
  (via the ``op_observer`` dispatcher hook) into a deterministic,
  serializable :class:`~repro.compile.plan.CompiledPlan`;
* :mod:`repro.compile.passes` consumes the ranked
  :mod:`repro.obs.opportune` report to fuse elementwise chains,
  hoist proven loop-invariant rebuilds, and pre-plan repeated
  allocations into an arena;
* :mod:`repro.compile.executor` replays the plan bit-exactly —
  identical outputs, counter digests, and classified errors — while
  computing counters analytically in bulk (one flush per group).

Import discipline: this package sits *below* ``repro.workloads`` and
``repro.serve`` (the dispatcher imports ``repro.compile.executor``),
so nothing imported at module scope here may import those layers.
The CLI (:mod:`repro.compile.cli`) is the only module that touches
the workload registry and is imported lazily by ``repro.cli``.
"""

from repro.compile.arena import Arena
from repro.compile.capture import (CapturedOp, PlanCapturer,
                                   capture_plan, capture_plan_with_trace,
                                   capture_program_plan)
from repro.compile.executor import (ExecutionStats, PlanSession,
                                    active_session, diff_against_eager,
                                    execute, plan_session, run_compiled)
from repro.compile.passes import plan_from_trace
from repro.compile.plan import (COMPILED_FLUSH_NS, COMPILED_STEP_NS,
                                ArenaBuffer, CompiledPlan,
                                PlanCaptureError, PlanDivergenceError,
                                PlanError, PlanGroup, PlanStep)

__all__ = [
    "Arena", "ArenaBuffer", "CapturedOp", "CompiledPlan",
    "COMPILED_FLUSH_NS", "COMPILED_STEP_NS", "ExecutionStats",
    "PlanCaptureError", "PlanCapturer", "PlanDivergenceError",
    "PlanError", "PlanGroup", "PlanSession", "PlanStep",
    "active_session", "capture_plan", "capture_plan_with_trace",
    "capture_program_plan", "diff_against_eager", "execute",
    "plan_from_trace", "plan_session", "run_compiled",
]
