"""Plan executor: replay a :class:`CompiledPlan` bit-exactly.

The executor does **plan-guided dispatch**: the workload's own
``run()`` executes unchanged (Python control flow is reproduced by
construction, so classified errors surface at exactly the same point
as eager), but every op that reaches :func:`repro.tensor.dispatch.
run_op` is intercepted — ``run_op`` checks :data:`ENABLED` and hands
the call to the thread's active :class:`PlanSession` — and replayed
against the positional plan:

1. the next eid indexes straight into ``plan.steps``; a name/kind
   mismatch, shape mismatch, or step over/underrun raises
   :class:`~repro.compile.plan.PlanDivergenceError` (deterministic —
   runners fall back to eager, never retry);
2. the step's **prototype event** is appended to the trace verbatim —
   no taxonomy lookup, byte counting, FLOP math, sparsity scan,
   timing, span lookup, or event construction per op;
3. hoisted repeats (``reuse_of``) skip their kernel and serve the
   leader's arena buffer; everything else runs the *instrumented
   kernel closure* it was captured with (never raw numpy — lint
   RL108);
4. counters are aggregated analytically: one
   :func:`repro.obs.metrics.observe_op_group` flush per plan group
   instead of one metrics update per op.

Result tensors are built with ``_track=False`` — allocation tracking
is the other per-op cost the plan already paid for at capture (the
prototype events carry captured ``live_bytes`` and the plan carries
``peak_live_bytes``), and skipping it is what pushes the measured
dispatch reduction past the modeled 5x.

The bit-exactness contract (asserted across the full workload roster
in ``tests/test_compile.py``): identical outputs, identical counter
digests (:func:`repro.obs.runrec.counters_digest`), identical
classified errors.  Wall-clock fields and latency-histogram bucket
placement are measured context, not contract.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.compile.arena import Arena
from repro.compile.plan import (COMPILED_FLUSH_NS, COMPILED_STEP_NS,
                                CompiledPlan, PlanDivergenceError,
                                PlanError)
from repro.core.profiler import Trace
from repro.obs import metrics as _metrics
from repro.obs.selfprof import MODELED_OVERHEAD_NS_PER_OP
from repro.tensor.context import (active_context, active_fault_hook,
                                  active_op_observer)
from repro.tensor.context import profile as _profile
from repro.tensor.tensor import Tensor

__all__ = ["ENABLED", "PlanSession", "ExecutionStats", "plan_session",
           "active_session", "execute", "run_compiled",
           "diff_against_eager"]

#: Fast-path flag consulted by the dispatcher before any function call
#: into this module (same contract as ``repro.obs.selfprof.ENABLED`` /
#: ``repro.obs.metrics.ENABLED``): true while *any* thread has an open
#: plan session.  The dispatcher still resolves the thread-local
#: session, so other threads fall through to eager dispatch.
ENABLED = False

_enabled_count = 0
_enabled_lock = threading.Lock()

_state = threading.local()


def _session_stack() -> List["PlanSession"]:
    if not hasattr(_state, "sessions"):
        _state.sessions = []
    return _state.sessions


def active_session() -> Optional["PlanSession"]:
    """This thread's innermost open plan session, if any."""
    stack = _session_stack()
    return stack[-1] if stack else None


def _count_enabled(delta: int) -> None:
    global ENABLED, _enabled_count
    with _enabled_lock:
        _enabled_count = max(0, _enabled_count + delta)
        ENABLED = _enabled_count > 0


@dataclass
class ExecutionStats:
    """What one compiled replay actually did (measured context)."""

    steps_replayed: int = 0
    kernels_run: int = 0
    kernels_skipped: int = 0
    groups_flushed: int = 0
    arena: Dict[str, int] = field(default_factory=dict)

    def modeled_saved_ns(self) -> int:
        """Dispatch ns saved vs eager, under the frozen cost model."""
        eager = self.steps_replayed * MODELED_OVERHEAD_NS_PER_OP
        compiled = (self.steps_replayed * COMPILED_STEP_NS
                    + self.groups_flushed * COMPILED_FLUSH_NS)
        return eager - compiled

    def to_dict(self) -> Dict[str, object]:
        return {
            "steps_replayed": self.steps_replayed,
            "kernels_run": self.kernels_run,
            "kernels_skipped": self.kernels_skipped,
            "groups_flushed": self.groups_flushed,
            "modeled_saved_ns": self.modeled_saved_ns(),
            "arena": dict(self.arena),
        }


class PlanSession:
    """One thread's replay of one plan (sessions never cross threads)."""

    def __init__(self, plan: CompiledPlan):
        self.plan = plan
        self.arena = Arena(plan.arena)
        self.stats = ExecutionStats()

    # -- dispatcher entry ----------------------------------------------------
    def replay_op(self, name: str, compute, inputs: Sequence) -> Tensor:
        """Replay one dispatched op against the positional plan."""
        ctx = active_context()
        if ctx is None:
            # untraced dispatch (e.g. a stray op outside the profile
            # block): nothing to replay against — mirror the eager
            # untraced path exactly
            arrays = [v.data if isinstance(v, Tensor) else v
                      for v in inputs]
            return Tensor(np.asarray(compute(*arrays)))
        steps = self.plan.steps
        eid = ctx.next_eid()
        if eid >= len(steps):
            raise PlanDivergenceError(
                f"replay overran the plan: op {name!r} would be event "
                f"{eid} but the plan has {len(steps)} steps")
        step = steps[eid]
        if step.kind != "op" or step.name != name:
            raise PlanDivergenceError(
                f"replay diverged at eid {eid}: plan expects "
                f"{step.kind} {step.name!r}, workload dispatched "
                f"op {name!r}")
        arrays = [v.data if isinstance(v, Tensor) else v
                  for v in inputs]
        if step.reuse_of >= 0:
            out_arr = self.arena.get(step.reuse_of)
            if out_arr is None:
                raise PlanDivergenceError(
                    f"eid {eid} reuses hoist leader {step.reuse_of} "
                    "whose output was never checked in")
            self.stats.kernels_skipped += 1
        else:
            out_arr = np.asarray(compute(*arrays))
            if out_arr.shape != step.output_shape:
                raise PlanDivergenceError(
                    f"replay diverged at eid {eid} ({name!r}): plan "
                    f"recorded output shape {step.output_shape}, "
                    f"kernel produced {out_arr.shape}")
            if step.cache_as:
                out_arr = self.arena.place(eid, out_arr)
            self.stats.kernels_run += 1
        event = step.event
        ctx.record(event)
        if step.flush:
            self._flush(step.group)
        observer = active_op_observer()
        if observer is not None:
            observer.observe_op(event, arrays, out_arr)
        self.stats.steps_replayed += 1
        return Tensor(out_arr, producer=event.eid, _track=False)

    def _flush(self, group_index: int) -> None:
        self.stats.groups_flushed += 1
        if not _metrics.ENABLED:
            return
        for row in self.plan.groups[group_index].metric_rows:
            (category, count, seconds_total, flops_total,
             nbytes_total, live_bytes, peak_live_bytes) = row
            _metrics.observe_op_group(
                category, count, seconds_total, flops_total,
                nbytes_total, live_bytes, peak_live_bytes)

    def finish(self) -> ExecutionStats:
        self.stats.arena = self.arena.stats()
        return self.stats


@contextmanager
def plan_session(plan: CompiledPlan) -> Iterator[PlanSession]:
    """Install a replay session for this thread.

    Refuses to open under an active fault hook: fault plans count op
    indices by *consulting every dispatch*, and the compiled path does
    not consult, so the semantics would silently diverge.  Callers
    that need fault injection run eager (the resilient runner does
    exactly that).
    """
    if active_fault_hook() is not None:
        raise PlanError(
            "compiled execution cannot run under a fault hook; "
            "use the eager tier for fault-injection runs")
    session = PlanSession(plan)
    _session_stack().append(session)
    _count_enabled(+1)
    try:
        yield session
    finally:
        _count_enabled(-1)
        stack = _session_stack()
        if not stack or stack[-1] is not session:  # pragma: no cover
            raise RuntimeError("plan sessions exited out of order")
        stack.pop()
        session.finish()


def execute(workload, plan: CompiledPlan) -> Tuple[Trace, ExecutionStats]:
    """Run ``workload`` through ``plan``; returns (trace, stats).

    Mirrors ``Workload.profile()`` — same metadata keys, same trace
    shape — with ``peak_live_bytes`` taken from the plan (allocation
    tracking is compiled out).  Raises
    :class:`~repro.compile.plan.PlanDivergenceError` when the run
    records a different number of events than the plan captured.
    """
    name = getattr(getattr(workload, "info", None), "name", "")
    if plan.workload and name and plan.workload != name:
        raise PlanError(
            f"plan was captured from workload {plan.workload!r}; "
            f"refusing to replay {name!r}")
    workload.build()
    with _profile(name or plan.workload) as prof:
        with plan_session(plan) as session:
            result = workload.run()
    trace = prof.trace
    if len(trace.events) != len(plan.steps):
        raise PlanDivergenceError(
            f"replay recorded {len(trace.events)} events but the plan "
            f"has {len(plan.steps)} steps — the op graph changed since "
            "capture")
    trace.metadata.update(workload.params)
    trace.metadata["result"] = result
    trace.metadata["peak_live_bytes"] = plan.peak_live_bytes
    trace.metadata["parameter_bytes"] = workload.parameter_bytes()
    trace.metadata["codebook_bytes"] = workload.codebook_bytes()
    return trace, session.stats


def run_compiled(workload, plan: CompiledPlan) -> Trace:
    """:func:`execute` returning only the trace (profile-compatible)."""
    trace, _ = execute(workload, plan)
    return trace


def diff_against_eager(eager: Trace, compiled: Trace) -> Dict[str, object]:
    """Bit-exactness comparison between an eager and a compiled trace.

    The contract surface: counter digests, event counts, per-event
    deterministic fields, and result metadata.  Wall-clock fields are
    deliberately not compared.
    """
    from repro.obs.runrec import counters_digest  # deferred (cycle)
    eager_digest = counters_digest(eager)
    compiled_digest = counters_digest(compiled)
    mismatches: List[str] = []
    if len(eager.events) != len(compiled.events):
        mismatches.append(
            f"event count: eager {len(eager.events)} vs compiled "
            f"{len(compiled.events)}")
    for a, b in zip(eager.events, compiled.events):
        if (a.name, a.category, a.phase, a.stage, a.flops,
                a.bytes_read, a.bytes_written, tuple(a.output_shape),
                a.parents) != (b.name, b.category, b.phase, b.stage,
                               b.flops, b.bytes_read, b.bytes_written,
                               tuple(b.output_shape), b.parents):
            mismatches.append(f"event {a.eid}: {a.name!r} fields differ")
            if len(mismatches) >= 8:
                break
    eager_result = eager.metadata.get("result")
    compiled_result = compiled.metadata.get("result")
    if repr(eager_result) != repr(compiled_result):
        mismatches.append("result metadata differs")
    return {
        "bit_exact": (eager_digest == compiled_digest
                      and not mismatches),
        "eager_counters_digest": eager_digest,
        "compiled_counters_digest": compiled_digest,
        "events": len(eager.events),
        "mismatches": mismatches,
    }
