"""Reusable output arena: the plan's pre-planned allocation schedule.

Eager execution allocates a fresh numpy output for every op; the
``prealloc`` opportunities show the same shapes being allocated
hundreds of times per run.  A compiled plan ships an allocation
schedule (:class:`~repro.compile.plan.ArenaBuffer` rows) and each
:class:`~repro.compile.executor.PlanSession` owns one :class:`Arena`
over it:

* **hoist leaders** check their computed output in once
  (:meth:`Arena.place`); every later repeat is served the *same*
  arena-owned array (:meth:`Arena.get`) — ``sites - 1`` allocations
  and kernels gone, with tensor aliasing safe under the runtime's
  immutable-by-convention contract;
* remaining ``prealloc`` rows are the forward-looking schedule for
  the process-worker tier (ROADMAP item 2): buffers are materialized
  **lazily** (first checkout), so unused entries cost nothing here
  while the schedule rides along in the serialized plan.

Arenas are per-session and therefore per-thread; nothing here locks.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.compile.plan import ArenaBuffer, PlanError

__all__ = ["Arena"]


class Arena:
    """Lazy buffer pool keyed by the owning step's eid."""

    def __init__(self, buffers: Iterable[ArenaBuffer]):
        self._spec: Dict[int, ArenaBuffer] = {b.eid: b for b in buffers}
        self._slots: Dict[int, np.ndarray] = {}
        self.placements = 0
        self.reuses = 0

    def __len__(self) -> int:
        return len(self._spec)

    @property
    def materialized(self) -> int:
        return len(self._slots)

    def _ensure(self, eid: int) -> np.ndarray:
        slot = self._slots.get(eid)
        if slot is None:
            spec = self._spec.get(eid)
            if spec is None:
                raise PlanError(f"no arena buffer planned for eid {eid}")
            slot = np.empty(spec.shape,
                            dtype=spec.dtype or np.float64)
            self._slots[eid] = slot
        return slot

    def place(self, eid: int, array: np.ndarray) -> np.ndarray:
        """Check ``array`` into the buffer planned for ``eid``.

        Returns the arena-owned storage (a stable array reused for the
        whole session); the caller hands that out instead of its own
        allocation.  Shape/dtype mismatches mean the replay diverged
        from the plan and surface as :class:`PlanError`.
        """
        slot = self._ensure(eid)
        if slot.shape != array.shape or slot.dtype != array.dtype:
            raise PlanError(
                f"arena buffer for eid {eid} is "
                f"{slot.shape}/{slot.dtype}, got "
                f"{array.shape}/{array.dtype}")
        np.copyto(slot, array)
        self.placements += 1
        return slot

    def get(self, eid: int) -> Optional[np.ndarray]:
        """The checked-in buffer for ``eid``, or ``None`` if absent."""
        slot = self._slots.get(eid)
        if slot is not None:
            self.reuses += 1
        return slot

    def stats(self) -> Dict[str, int]:
        return {
            "planned": len(self._spec),
            "materialized": self.materialized,
            "planned_bytes": sum(b.nbytes for b in self._spec.values()),
            "placements": self.placements,
            "reuses": self.reuses,
        }
