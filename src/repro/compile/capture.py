"""Plan capture: one instrumented eager run -> a :class:`CompiledPlan`.

The capturer is an ``op_observer`` (the PR 6 dispatcher hook): it sees
every dispatched tensor op *with* its raw output array — dtypes and
values the trace event intentionally omits — and records the two
facts replay needs on top of the trace:

* the output **dtype** (plan steps verify shape eagerly and carry the
  dtype for serialization / arena planning);
* a sha256 **fingerprint** of the output bytes (size-capped), which is
  what lets the hoist pass prove a repeated op is genuinely
  loop-invariant — all repeats produced bit-identical outputs in the
  capture run — before the executor is allowed to skip its kernel.

Capture is a plain profiled run: ``build()`` stays outside the trace
(and therefore outside the observer), faults must be absent, and the
resulting trace is the same object ``Workload.profile()`` returns, so
the captured counters digest is directly comparable with any eager
run.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.compile.passes import plan_from_trace
from repro.compile.plan import CompiledPlan, PlanCaptureError
from repro.core.profiler import Trace, TraceEvent
from repro.core.taxonomy import category_for
from repro.tensor.context import active_fault_hook, op_observer

__all__ = ["CapturedOp", "PlanCapturer", "capture_plan",
           "capture_plan_with_trace", "capture_program_plan",
           "FINGERPRINT_LIMIT_BYTES"]

#: Outputs larger than this are not fingerprinted (hashing a huge
#: activation would dominate the capture run); steps without a
#: fingerprint are simply never hoisted.
FINGERPRINT_LIMIT_BYTES = 1 << 24


@dataclass(frozen=True)
class CapturedOp:
    """Observer-side facts about one dispatched op."""

    eid: int
    name: str
    output_dtype: str
    fingerprint: str       #: sha256 of output bytes; "" when over limit


class PlanCapturer:
    """``op_observer`` recording per-op dtype + output fingerprint.

    Only dispatcher-routed ops notify observers, so events recorded
    via ``record_event`` / ``record_region`` (host-side symbolic
    regions) are *absent* from :attr:`records` — that absence is what
    marks them as ``region`` steps in the plan.
    """

    def __init__(self,
                 fingerprint_limit: int = FINGERPRINT_LIMIT_BYTES):
        self.records: Dict[int, CapturedOp] = {}
        self.fingerprint_limit = fingerprint_limit

    def observe_op(self, event: TraceEvent, inputs, output) -> None:
        try:
            category_for(event.name)
        except KeyError:
            raise PlanCaptureError(
                f"op {event.name!r} (eid {event.eid}) is not in the "
                "OP_CATEGORIES registry; refusing to compile an "
                "unclassified template")
        out = np.asarray(output)
        if 0 < out.nbytes <= self.fingerprint_limit:
            fingerprint = hashlib.sha256(out.tobytes()).hexdigest()
        else:
            fingerprint = ""
        self.records[event.eid] = CapturedOp(
            eid=event.eid, name=event.name,
            output_dtype=str(out.dtype), fingerprint=fingerprint)


def capture_plan_with_trace(workload) -> Tuple[CompiledPlan, Trace]:
    """Profile ``workload`` once under capture; plan + capture trace.

    ``workload`` is any object with the :class:`repro.workloads.base.
    Workload` surface (``info``, ``params``, ``build``, ``run``,
    ``profile``).  The capture refuses to run under an active fault
    hook: injected faults would bake poisoned counters into the plan.
    """
    if active_fault_hook() is not None:
        raise PlanCaptureError(
            "cannot capture a plan with a fault hook installed — "
            "the plan would replay injected behavior as ground truth")
    capturer = PlanCapturer()
    with op_observer(capturer):
        trace = workload.profile()
    plan = plan_from_trace(
        trace, capturer,
        workload=getattr(getattr(workload, "info", None), "name", "")
        or (trace.workload or ""),
        params=dict(getattr(workload, "params", {}) or {}))
    return plan, trace


def capture_plan(workload) -> CompiledPlan:
    """:func:`capture_plan_with_trace` returning only the plan."""
    plan, _ = capture_plan_with_trace(workload)
    return plan


def capture_program_plan(trace: Trace, capturer: PlanCapturer,
                         workload: str = "",
                         params: Optional[Dict[str, object]] = None
                         ) -> CompiledPlan:
    """Build a plan from an externally captured trace + capturer.

    Lower-level entry for callers that drive their own profiled run —
    ``repro.fuzz.oracle`` captures generated programs this way rather
    than through ``Workload.profile``.
    """
    return plan_from_trace(trace, capturer, workload=workload,
                           params=dict(params or {}))
