"""Compiled-plan IR: steps, groups, arena spec, and the cost model.

A :class:`CompiledPlan` is the serializable artifact produced by one
instrumented eager run (``repro.compile.capture``) after the
optimization passes (``repro.compile.passes``) have annotated it.  It
is **positional**: step ``i`` describes the ``i``-th trace event the
workload will emit when re-run, so the executor can index straight
into ``plan.steps[eid]`` from the dispatcher without any matching
logic.  That only works because every workload here is seeded and
deterministic — the plan executor verifies the op name at every step
and raises :class:`PlanDivergenceError` the moment the replay leaves
the captured graph.

The **frozen compiled cost model** mirrors
:data:`repro.obs.selfprof.MODELED_COMPONENT_NS`: an eager dispatch is
modeled at :data:`~repro.obs.selfprof.MODELED_OVERHEAD_NS_PER_OP`
(2000 ns) of non-kernel overhead, while a compiled replay step pays
:data:`COMPILED_STEP_NS` (index + name check + prototype-event append)
plus :data:`COMPILED_FLUSH_NS` per group flush (one bulk ledger /
metrics update instead of per-op updates).  These constants are part
of the deterministic surface gated by ``repro obs history gate`` —
change them only with a baseline regeneration.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.core.profiler import TraceEvent
from repro.core.taxonomy import OpCategory, category_for
from repro.obs.selfprof import MODELED_OVERHEAD_NS_PER_OP

__all__ = ["PlanError", "PlanCaptureError", "PlanDivergenceError",
           "PlanStep", "PlanGroup", "ArenaBuffer", "CompiledPlan",
           "COMPILED_STEP_NS", "COMPILED_FLUSH_NS", "PLAN_VERSION"]

#: Modeled per-step cost of a compiled replay (ns): one plan index,
#: one name check, one prototype-event append.  Frozen cost model.
COMPILED_STEP_NS = 250

#: Modeled cost of one bulk group flush (ns): a single aggregated
#: metrics/ledger update covering every op in the group.
COMPILED_FLUSH_NS = 100

#: Bumped whenever the serialized layout changes incompatibly.
PLAN_VERSION = 1


class PlanError(RuntimeError):
    """Base class for plan capture/build/replay failures."""


class PlanCaptureError(PlanError):
    """The eager capture run produced a graph we cannot compile."""


class PlanDivergenceError(PlanError):
    """Replay left the captured op graph (wrong op, shape, or count).

    Deliberately a deterministic error: replaying a stale plan against
    changed code or params is not transient, so
    :meth:`repro.resilience.runner.ResilientRunner.classify_error`
    fails fast instead of retrying, and the serving/runner layers fall
    back to eager execution.
    """


@dataclass(frozen=True)
class PlanStep:
    """One positional replay step — immutable once the plan is built.

    ``kind`` is ``"op"`` for dispatcher-observed tensor ops (replayed
    through the instrumented kernel closure) and ``"region"`` for
    analytically recorded events (``record_event`` / ``record_region``
    emit those without notifying observers; the replay lets the
    workload re-record them eagerly and only checks alignment).
    """

    eid: int
    kind: str                      #: "op" | "region"
    name: str
    event: TraceEvent              #: prototype event, replayed verbatim
    output_shape: Tuple[int, ...] = ()
    output_dtype: str = ""
    fingerprint: str = ""          #: sha256 of output bytes ("" = none)
    reuse_of: int = -1             #: eid of hoist leader (-1 = compute)
    cache_as: bool = False         #: hoist leader: cache output for reuse
    group: int = -1                #: PlanGroup index (-1 = region step)
    flush: bool = False            #: last step of its group: bulk-flush

    def deterministic_dict(self) -> Dict[str, object]:
        """Serializable view excluding measured (wall-clock) fields."""
        e = self.event
        return {
            "eid": self.eid, "kind": self.kind, "name": self.name,
            "category": e.category.value, "phase": e.phase,
            "stage": e.stage, "flops": e.flops,
            "bytes_read": e.bytes_read, "bytes_written": e.bytes_written,
            "input_shapes": [list(s) for s in e.input_shapes],
            "output_shape": list(self.output_shape),
            "output_sparsity": e.output_sparsity,
            "parents": list(e.parents),
            "output_dtype": self.output_dtype,
            "fingerprint": self.fingerprint,
            "reuse_of": self.reuse_of, "cache_as": self.cache_as,
            "group": self.group, "flush": self.flush,
        }


@dataclass(frozen=True)
class PlanGroup:
    """A run of op steps flushed as one bulk counters update.

    ``metric_rows`` pre-aggregates the group per category in trace
    order — ``(category, count, seconds_total, flops_total,
    nbytes_total, last_live_bytes, peak_live_bytes)`` — exactly the
    arguments :func:`repro.obs.metrics.observe_op_group` needs, so the
    flush does zero per-op work at replay time.
    """

    index: int
    kind: str                      #: "fused_chain" | "singleton"
    eids: Tuple[int, ...]
    metric_rows: Tuple[Tuple[str, int, float, float, float, int, int],
                       ...] = ()

    def deterministic_dict(self) -> Dict[str, object]:
        return {
            "index": self.index, "kind": self.kind,
            "eids": list(self.eids),
            # seconds_total is measured; keep count/flops/bytes only
            "metric_rows": [[r[0], r[1], r[3], r[4]]
                            for r in self.metric_rows],
        }


@dataclass(frozen=True)
class ArenaBuffer:
    """One pre-planned output buffer (a prealloc opportunity)."""

    eid: int                       #: first event writing this shape
    shape: Tuple[int, ...]
    dtype: str
    nbytes: int
    sites: int                     #: captured allocation sites served

    def deterministic_dict(self) -> Dict[str, object]:
        return {"eid": self.eid, "shape": list(self.shape),
                "dtype": self.dtype, "nbytes": self.nbytes,
                "sites": self.sites}


@dataclass
class CompiledPlan:
    """A captured, optimized, serializable replay program."""

    workload: str
    params: Dict[str, object] = field(default_factory=dict)
    steps: List[PlanStep] = field(default_factory=list)
    groups: List[PlanGroup] = field(default_factory=list)
    arena: List[ArenaBuffer] = field(default_factory=list)
    peak_live_bytes: int = 0
    counters_digest: str = ""      #: digest of the capture trace
    version: int = PLAN_VERSION

    # -- derived counts ------------------------------------------------------
    @property
    def op_steps(self) -> int:
        return sum(1 for s in self.steps if s.kind == "op")

    @property
    def region_steps(self) -> int:
        return len(self.steps) - self.op_steps

    @property
    def fused_groups(self) -> int:
        return sum(1 for g in self.groups if g.kind == "fused_chain")

    @property
    def hoisted_steps(self) -> int:
        return sum(1 for s in self.steps if s.reuse_of >= 0)

    # -- frozen cost model ---------------------------------------------------
    def modeled_eager_dispatch_ns(self) -> int:
        """Dispatch overhead the eager tier pays for these ops."""
        return self.op_steps * MODELED_OVERHEAD_NS_PER_OP

    def modeled_compiled_dispatch_ns(self) -> int:
        """Dispatch overhead the compiled replay pays instead."""
        return (self.op_steps * COMPILED_STEP_NS
                + len(self.groups) * COMPILED_FLUSH_NS)

    def modeled_reduction(self) -> float:
        compiled = self.modeled_compiled_dispatch_ns()
        if not compiled:
            return 0.0
        return self.modeled_eager_dispatch_ns() / compiled

    def stats(self) -> Dict[str, object]:
        """Deterministic plan facts (baseline- and history-gated)."""
        return {
            "steps": len(self.steps),
            "op_steps": self.op_steps,
            "region_steps": self.region_steps,
            "groups": len(self.groups),
            "fused_groups": self.fused_groups,
            "hoisted_steps": self.hoisted_steps,
            "arena_buffers": len(self.arena),
            "arena_bytes": sum(b.nbytes for b in self.arena),
            "modeled_eager_dispatch_ns": self.modeled_eager_dispatch_ns(),
            "modeled_compiled_dispatch_ns":
                self.modeled_compiled_dispatch_ns(),
            "modeled_reduction_x": round(self.modeled_reduction(), 6),
        }

    # -- integrity -----------------------------------------------------------
    def validate(self) -> None:
        """Structural soundness: raise :class:`PlanError` on violation."""
        for index, step in enumerate(self.steps):
            if step.eid != index:
                raise PlanError(
                    f"plan step {index} carries eid {step.eid}; "
                    "steps must be positional")
            if step.kind == "op":
                # every replayed template must be a registered op —
                # category_for raises KeyError on unknown names
                category_for(step.name)
            elif step.kind != "region":
                raise PlanError(f"unknown step kind {step.kind!r} "
                                f"at eid {step.eid}")
            if step.reuse_of >= 0:
                leader = self.steps[step.reuse_of]
                if not leader.cache_as:
                    raise PlanError(
                        f"step {step.eid} reuses eid {step.reuse_of} "
                        "which is not a hoist leader")

    # -- digest --------------------------------------------------------------
    def deterministic_dict(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "workload": self.workload,
            "params": {k: repr(v) for k, v in sorted(self.params.items())},
            "counters_digest": self.counters_digest,
            "peak_live_bytes": self.peak_live_bytes,
            "cost_model": {
                "eager_ns_per_op": MODELED_OVERHEAD_NS_PER_OP,
                "compiled_ns_per_step": COMPILED_STEP_NS,
                "compiled_ns_per_flush": COMPILED_FLUSH_NS,
            },
            "stats": self.stats(),
            "steps": [s.deterministic_dict() for s in self.steps],
            "groups": [g.deterministic_dict() for g in self.groups],
            "arena": [b.deterministic_dict() for b in self.arena],
        }

    def digest(self) -> str:
        """sha256 over the deterministic view (no wall-clock fields)."""
        canonical = json.dumps(self.deterministic_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out = self.deterministic_dict()
        # measured prototype fields ride along so a loaded plan replays
        # the exact captured events (they are context, not contract)
        out["measured"] = [
            {"wall_time": s.event.wall_time, "t_start": s.event.t_start,
             "live_bytes": s.event.live_bytes, "sid": s.event.sid}
            for s in self.steps]
        out["group_seconds"] = [
            [[r[0], r[2], r[5], r[6]] for r in g.metric_rows]
            for g in self.groups]
        out["params_values"] = _encode_params(self.params)
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CompiledPlan":
        version = int(payload.get("version", -1))
        if version != PLAN_VERSION:
            raise PlanError(f"cannot load plan version {version}; "
                            f"this build reads version {PLAN_VERSION}")
        measured = payload.get("measured") or []
        steps: List[PlanStep] = []
        for raw, extra in zip(payload["steps"], measured):
            event = TraceEvent(
                eid=int(raw["eid"]), name=str(raw["name"]),
                category=OpCategory(raw["category"]),
                phase=str(raw["phase"]), stage=str(raw["stage"]),
                flops=float(raw["flops"]),
                bytes_read=int(raw["bytes_read"]),
                bytes_written=int(raw["bytes_written"]),
                input_shapes=tuple(tuple(int(d) for d in s)
                                   for s in raw["input_shapes"]),
                output_shape=tuple(int(d) for d in raw["output_shape"]),
                output_sparsity=float(raw["output_sparsity"]),
                wall_time=float(extra.get("wall_time", 0.0)),
                parents=tuple(int(p) for p in raw["parents"]),
                live_bytes=int(extra.get("live_bytes", 0)),
                t_start=float(extra.get("t_start", 0.0)),
                sid=extra.get("sid"))
            steps.append(PlanStep(
                eid=int(raw["eid"]), kind=str(raw["kind"]),
                name=str(raw["name"]), event=event,
                output_shape=tuple(int(d) for d in raw["output_shape"]),
                output_dtype=str(raw["output_dtype"]),
                fingerprint=str(raw["fingerprint"]),
                reuse_of=int(raw["reuse_of"]),
                cache_as=bool(raw["cache_as"]),
                group=int(raw["group"]), flush=bool(raw["flush"])))
        group_seconds = payload.get("group_seconds") or []
        groups: List[PlanGroup] = []
        for raw, seconds in zip(payload["groups"], group_seconds):
            by_cat = {row[0]: row for row in seconds}
            rows = tuple(
                (str(cat), int(count),
                 float(by_cat[cat][1]) if cat in by_cat else 0.0,
                 float(flops), float(nbytes),
                 int(by_cat[cat][2]) if cat in by_cat else 0,
                 int(by_cat[cat][3]) if cat in by_cat else 0)
                for cat, count, flops, nbytes in raw["metric_rows"])
            groups.append(PlanGroup(
                index=int(raw["index"]), kind=str(raw["kind"]),
                eids=tuple(int(e) for e in raw["eids"]),
                metric_rows=rows))
        arena = [ArenaBuffer(
            eid=int(raw["eid"]),
            shape=tuple(int(d) for d in raw["shape"]),
            dtype=str(raw["dtype"]), nbytes=int(raw["nbytes"]),
            sites=int(raw["sites"]))
            for raw in payload["arena"]]
        plan = cls(workload=str(payload["workload"]),
                   params=_decode_params(payload.get("params_values", {})),
                   steps=steps, groups=groups, arena=arena,
                   peak_live_bytes=int(payload["peak_live_bytes"]),
                   counters_digest=str(payload["counters_digest"]),
                   version=version)
        plan.validate()
        return plan

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), sort_keys=True,
                                         indent=1) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CompiledPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))

    # -- presentation --------------------------------------------------------
    def render(self) -> str:
        from repro.core.report import render_table  # deferred (cycle)
        stats = self.stats()
        rows = [[key, stats[key]] for key in sorted(stats)]
        table = render_table(
            ["plan fact", "value"], rows,
            title=f"compiled plan: {self.workload or '<anonymous>'}")
        return (table + f"\ndigest {self.digest()[:16]}… · "
                f"counters {self.counters_digest[:16]}… · "
                f"modeled dispatch reduction "
                f"{self.modeled_reduction():.1f}x")


def _encode_params(params: Dict[str, object]) -> Dict[str, object]:
    """JSON-safe workload params (scalars and strings only survive)."""
    out: Dict[str, object] = {}
    for key, value in sorted(params.items()):
        if isinstance(value, (bool, int, float, str)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


def _decode_params(payload: Dict[str, object]) -> Dict[str, object]:
    return dict(payload)


def steps_for(plan: CompiledPlan,
              eids: Sequence[int]) -> List[PlanStep]:
    """The plan steps covering ``eids`` (diagnostics helper)."""
    return [plan.steps[eid] for eid in eids
            if 0 <= eid < len(plan.steps)]
