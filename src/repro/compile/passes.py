"""Optimization passes: ``obs.opportune`` report -> annotated plan.

The passes consume exactly the work-list the opportunity analyzer
ranks (ISSUE 9 built the report *for* this consumer) and annotate the
positional step list three ways:

* **fuse** — each ``fuse_chain`` opportunity whose eids are a
  contiguous run of dispatcher op steps becomes one
  :class:`~repro.compile.plan.PlanGroup` flushed as a single bulk
  counters update; every remaining op step gets a singleton group.
  Chain links are re-verified with the *shared* predicate
  :func:`repro.obs.opportune.fusible_link`, so the report and the
  compiled plan cannot disagree about what fuses.
* **hoist** — a ``hoist_invariant`` opportunity is honored only when
  every repeat carries the same non-empty capture fingerprint (all
  repeats produced bit-identical outputs): the first repeat becomes
  the *leader* (``cache_as``), later repeats set ``reuse_of`` and the
  executor skips their kernels, serving the leader's arena buffer.
* **prealloc** — hoist-leader outputs plus ``prealloc`` opportunities
  become :class:`~repro.compile.plan.ArenaBuffer` entries, the
  reusable allocation schedule ``repro.compile.arena`` materializes.

Every pass is a pure function of (trace, capture records, report), so
the resulting plan — and its digest — is deterministic for a seeded
workload.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.compile.plan import (ArenaBuffer, CompiledPlan,
                                PlanCaptureError, PlanGroup, PlanStep)
from repro.core.profiler import Trace, TraceEvent
from repro.obs.opportune import OpportunityReport, analyze_trace, fusible_link

__all__ = ["plan_from_trace", "build_steps", "fuse_pass", "hoist_pass",
           "arena_pass"]

MetricRow = Tuple[str, int, float, float, float, int, int]


def build_steps(trace: Trace, capturer) -> List[PlanStep]:
    """Positional step skeleton: one step per trace event.

    Events the capturer observed are ``op`` steps (dispatcher-routed,
    replayable through their kernel closures); the rest are ``region``
    steps that the workload re-records eagerly at replay time.
    """
    steps: List[PlanStep] = []
    for index, event in enumerate(trace.events):
        if event.eid != index:
            raise PlanCaptureError(
                f"capture trace is not positional: event {index} "
                f"carries eid {event.eid}")
        record = capturer.records.get(event.eid)
        if record is not None:
            if record.name != event.name:  # pragma: no cover - defensive
                raise PlanCaptureError(
                    f"capture desync at eid {event.eid}: observer saw "
                    f"{record.name!r}, trace has {event.name!r}")
            steps.append(PlanStep(
                eid=event.eid, kind="op", name=event.name, event=event,
                output_shape=tuple(event.output_shape),
                output_dtype=record.output_dtype,
                fingerprint=record.fingerprint))
        else:
            steps.append(PlanStep(
                eid=event.eid, kind="region", name=event.name,
                event=event,
                output_shape=tuple(event.output_shape)))
    return steps


def _metric_rows(events: List[TraceEvent]) -> Tuple[MetricRow, ...]:
    """Pre-aggregate a group the way per-op ``observe_op`` calls would.

    Per-op clamping (NaN/negative flops -> 0, negative bytes -> 0)
    happens *here*, before summing, so the bulk totals land exactly
    where ``len(events)`` individual metric updates would put them.
    Rows are ordered by each category's last event so the final
    live-byte gauge write matches the group's last op.
    """
    acc: Dict[str, List[float]] = {}
    order: Dict[str, int] = {}
    for event in events:
        category = event.category.value
        flops = event.flops
        if not (flops == flops and flops > 0.0):
            flops = 0.0
        nbytes = event.bytes_read + event.bytes_written
        if nbytes < 0:
            nbytes = 0
        row = acc.get(category)
        if row is None:
            row = acc.setdefault(
                category, [0, 0.0, 0.0, 0.0, 0, 0])
        row[0] += 1
        row[1] += event.wall_time
        row[2] += flops
        row[3] += float(nbytes)
        row[4] = event.live_bytes
        row[5] = max(row[5], event.live_bytes)
        order[category] = event.eid
    return tuple(
        (category, int(acc[category][0]), acc[category][1],
         acc[category][2], acc[category][3], int(acc[category][4]),
         int(acc[category][5]))
        for category in sorted(acc, key=lambda c: order[c]))


def fuse_pass(steps: List[PlanStep], report: OpportunityReport
              ) -> Tuple[List[PlanStep], List[PlanGroup]]:
    """Assign every op step to a group; fuse reported chains."""
    chain_at: Dict[int, Tuple[int, ...]] = {}
    claimed: Dict[int, int] = {}
    for opportunity in report.opportunities:
        if opportunity.kind != "fuse_chain":
            continue
        eids = opportunity.eids
        if not eids or any(e in claimed for e in eids):
            continue
        if any(e >= len(steps) or steps[e].kind != "op" for e in eids):
            continue
        if list(eids) != list(range(eids[0], eids[-1] + 1)):
            continue
        events = [steps[e].event for e in eids]
        agreed = fusible_link(None, events[0]) and all(
            fusible_link(prev, event)
            for prev, event in zip(events, events[1:]))
        if not agreed:
            raise PlanCaptureError(
                "fusion pass and opportunity report disagree on chain "
                f"at eids {eids[0]}..{eids[-1]} — fusible_link must be "
                "the single shared predicate")
        chain_at[eids[0]] = eids
        for eid in eids:
            claimed[eid] = eids[0]

    groups: List[PlanGroup] = []
    annotated = list(steps)

    def close_group(kind: str, eids: Tuple[int, ...]) -> None:
        index = len(groups)
        groups.append(PlanGroup(
            index=index, kind=kind, eids=eids,
            metric_rows=_metric_rows([steps[e].event for e in eids])))
        for eid in eids:
            annotated[eid] = dataclasses.replace(
                annotated[eid], group=index, flush=(eid == eids[-1]))

    for step in steps:
        if step.kind != "op":
            continue
        if step.eid in chain_at:
            close_group("fused_chain", chain_at[step.eid])
        elif step.eid not in claimed:
            close_group("singleton", (step.eid,))
    return annotated, groups


def hoist_pass(steps: List[PlanStep],
               report: OpportunityReport) -> List[PlanStep]:
    """Mark proven loop-invariant repeats for kernel skipping."""
    annotated = list(steps)
    touched: set = set()
    for opportunity in report.opportunities:
        if opportunity.kind != "hoist_invariant":
            continue
        eids = opportunity.eids
        if len(eids) < 2 or any(e in touched for e in eids):
            continue
        if any(e >= len(steps) or steps[e].kind != "op" for e in eids):
            continue
        fingerprints = {steps[e].fingerprint for e in eids}
        if "" in fingerprints or len(fingerprints) != 1:
            # unproven invariance (output too large to fingerprint, or
            # repeats genuinely differed): keep every kernel
            continue
        leader = eids[0]
        annotated[leader] = dataclasses.replace(
            annotated[leader], cache_as=True)
        for eid in eids[1:]:
            annotated[eid] = dataclasses.replace(
                annotated[eid], reuse_of=leader)
        touched.update(eids)
    return annotated


def arena_pass(steps: List[PlanStep],
               report: OpportunityReport) -> List[ArenaBuffer]:
    """Plan the reusable-buffer schedule (leaders + prealloc sites)."""
    buffers: Dict[int, ArenaBuffer] = {}
    for step in steps:
        if not step.cache_as:
            continue
        reuses = sum(1 for s in steps if s.reuse_of == step.eid)
        nbytes = step.event.bytes_written
        if step.output_dtype and step.output_shape:
            nbytes = int(np.dtype(step.output_dtype).itemsize
                         * int(np.prod(step.output_shape)))
        buffers[step.eid] = ArenaBuffer(
            eid=step.eid, shape=step.output_shape,
            dtype=step.output_dtype, nbytes=nbytes, sites=reuses + 1)
    for opportunity in report.opportunities:
        if opportunity.kind != "prealloc":
            continue
        eids = opportunity.eids
        if not eids or eids[0] in buffers:
            continue
        first = steps[eids[0]] if eids[0] < len(steps) else None
        if first is None or first.kind != "op":
            continue
        buffers[eids[0]] = ArenaBuffer(
            eid=eids[0], shape=first.output_shape,
            dtype=first.output_dtype,
            nbytes=int(opportunity.detail.get("bytes_each",
                                              first.event.bytes_written)),
            sites=len(eids))
    return [buffers[eid] for eid in sorted(buffers)]


def plan_from_trace(trace: Trace, capturer,
                    report: Optional[OpportunityReport] = None,
                    workload: str = "",
                    params: Optional[Dict[str, object]] = None
                    ) -> CompiledPlan:
    """Assemble and validate a :class:`CompiledPlan` from one capture."""
    from repro.obs.runrec import counters_digest  # deferred (cycle)
    if report is None:
        report = analyze_trace(trace)
    steps = build_steps(trace, capturer)
    steps, groups = fuse_pass(steps, report)
    steps = hoist_pass(steps, report)
    arena = arena_pass(steps, report)
    plan = CompiledPlan(
        workload=workload or (trace.workload or ""),
        params=dict(params or {}),
        steps=steps, groups=groups, arena=arena,
        peak_live_bytes=int(trace.metadata.get("peak_live_bytes", 0)),
        counters_digest=counters_digest(trace))
    plan.validate()
    return plan
