"""``repro compile`` — build, run, and diff compiled plans.

::

    repro compile build nvsa --seed 0 -o nvsa_plan.json
    repro compile run nvsa --plan nvsa_plan.json
    repro compile diff prae --seed 0

``build`` captures one instrumented eager run and writes/prints the
optimized plan.  ``run`` replays a plan (loading it, or capturing one
on the spot) and prints the executor's stats.  ``diff`` is the
bit-exactness gate: one eager run vs one compiled replay, compared on
counter digests, per-event deterministic fields, and result metadata.

Exit codes: 0 clean; **7** when ``diff`` finds a divergence or a
replay raises :class:`~repro.compile.plan.PlanDivergenceError`.
"""

from __future__ import annotations

import argparse
import json
import sys

EXIT_PLAN_DIVERGENCE = 7


def add_compile_subcommands(sub: "argparse._SubParsersAction") -> None:
    compile_cmd = sub.add_parser(
        "compile",
        help="trace-derived plan compiler: capture an op graph once, "
             "replay it bit-exactly with bulk counters")
    inner = compile_cmd.add_subparsers(dest="compile_command",
                                       required=True)

    build = inner.add_parser(
        "build", help="capture one eager run into an optimized plan")
    build.add_argument("workload", help="registered workload name")
    build.add_argument("--seed", type=int, default=0)
    build.add_argument("-o", "--output", default=None,
                       help="write the serialized plan JSON here")

    run = inner.add_parser(
        "run", help="execute a workload through a compiled plan")
    run.add_argument("workload", help="registered workload name")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--plan", default=None,
                     help="plan JSON from `compile build` "
                          "(default: capture a fresh plan first)")

    diff = inner.add_parser(
        "diff", help="bit-exactness check: eager vs compiled replay")
    diff.add_argument("workload", help="registered workload name")
    diff.add_argument("--seed", type=int, default=0)
    diff.add_argument("--plan", default=None,
                      help="replay this plan JSON instead of capturing")
    diff.add_argument("--json", action="store_true",
                      help="print the comparison as JSON")


def _load_or_capture(args: "argparse.Namespace"):
    from repro.compile.capture import capture_plan
    from repro.compile.plan import CompiledPlan
    from repro.workloads import create
    if args.plan:
        return CompiledPlan.load(args.plan)
    return capture_plan(create(args.workload, seed=args.seed))


def run_compile_command(args: "argparse.Namespace") -> int:
    from repro.compile.plan import PlanDivergenceError
    from repro.workloads import create

    if args.compile_command == "build":
        from repro.compile.capture import capture_plan
        plan = capture_plan(create(args.workload, seed=args.seed))
        print(plan.render())
        if args.output:
            plan.save(args.output)
            print(f"plan -> {args.output}", file=sys.stderr)
        return 0

    if args.compile_command == "run":
        from repro.compile.executor import execute
        plan = _load_or_capture(args)
        try:
            trace, stats = execute(
                create(args.workload, seed=args.seed), plan)
        except PlanDivergenceError as exc:
            print(f"plan divergence: {exc}", file=sys.stderr)
            return EXIT_PLAN_DIVERGENCE
        payload = stats.to_dict()
        print(f"compiled run: {args.workload} seed {args.seed} — "
              f"{len(trace.events)} events, "
              f"{payload['kernels_run']} kernels run, "
              f"{payload['kernels_skipped']} hoist-skipped, "
              f"{payload['groups_flushed']} group flushes, "
              f"{payload['modeled_saved_ns'] / 1e6:.3f} ms modeled "
              "dispatch savings")
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    if args.compile_command == "diff":
        from repro.compile.executor import diff_against_eager, run_compiled
        plan = _load_or_capture(args)
        eager = create(args.workload, seed=args.seed).profile()
        try:
            compiled = run_compiled(
                create(args.workload, seed=args.seed), plan)
        except PlanDivergenceError as exc:
            print(f"plan divergence during replay: {exc}",
                  file=sys.stderr)
            return EXIT_PLAN_DIVERGENCE
        comparison = diff_against_eager(eager, compiled)
        if args.json:
            print(json.dumps(comparison, indent=2, sort_keys=True))
        else:
            verdict = ("bit-exact" if comparison["bit_exact"]
                       else "DIVERGENT")
            print(f"{args.workload} seed {args.seed}: {verdict} — "
                  f"{comparison['events']} events, counters "
                  f"{comparison['eager_counters_digest'][:16]}… vs "
                  f"{comparison['compiled_counters_digest'][:16]}…")
            for mismatch in comparison["mismatches"]:
                print(f"  mismatch: {mismatch}")
        return 0 if comparison["bit_exact"] else EXIT_PLAN_DIVERGENCE

    raise SystemExit(
        f"unhandled compile command {args.compile_command!r}")
