"""Trace (de)serialization.

Traces round-trip through a compact JSON format so characterization
runs can be archived, diffed, and re-analyzed without re-executing the
workload — the "comparable and validated" benchmarking the paper's
outlook section calls for.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.core.profiler import Trace, TraceEvent
from repro.core.taxonomy import OpCategory

#: bump when the on-disk layout changes
FORMAT_VERSION = 2

#: versions :func:`trace_from_dict` can still load.  Version 1 archives
#: predate per-span counter attribution; their events load with
#: ``sid=None``.
SUPPORTED_VERSIONS = (1, 2)


def safe_json_value(value):
    """``value`` if JSON-serializable, else its ``repr``."""
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


def event_to_dict(e: TraceEvent) -> Dict:
    """One event as plain JSON-safe structures."""
    return {
        "eid": e.eid,
        "name": e.name,
        "category": e.category.value,
        "phase": e.phase,
        "stage": e.stage,
        "flops": e.flops,
        "bytes_read": e.bytes_read,
        "bytes_written": e.bytes_written,
        "input_shapes": [list(s) for s in e.input_shapes],
        "output_shape": list(e.output_shape),
        "output_sparsity": e.output_sparsity,
        "wall_time": e.wall_time,
        "parents": list(e.parents),
        "live_bytes": e.live_bytes,
        "t_start": e.t_start,
        "sid": e.sid,
    }


def event_from_dict(raw: Dict) -> TraceEvent:
    """Inverse of :func:`event_to_dict` (missing keys default)."""
    return TraceEvent(
        eid=int(raw["eid"]),
        name=raw["name"],
        category=OpCategory(raw["category"]),
        phase=raw.get("phase", ""),
        stage=raw.get("stage", ""),
        flops=float(raw.get("flops", 0.0)),
        bytes_read=int(raw.get("bytes_read", 0)),
        bytes_written=int(raw.get("bytes_written", 0)),
        input_shapes=tuple(tuple(s)
                           for s in raw.get("input_shapes", [])),
        output_shape=tuple(raw.get("output_shape", [])),
        output_sparsity=float(raw.get("output_sparsity", 0.0)),
        wall_time=float(raw.get("wall_time", 0.0)),
        parents=tuple(raw.get("parents", [])),
        live_bytes=int(raw.get("live_bytes", 0)),
        t_start=float(raw.get("t_start", 0.0)),
        sid=(None if raw.get("sid") is None else int(raw["sid"])),
    )


def trace_to_dict(trace: Trace) -> Dict:
    """Serialize to plain JSON-safe structures."""
    return {
        "format_version": FORMAT_VERSION,
        "workload": trace.workload,
        "metadata": {key: safe_json_value(val)
                     for key, val in trace.metadata.items()},
        "events": [event_to_dict(e) for e in trace],
    }


def trace_from_dict(payload: Dict) -> Trace:
    """Inverse of :func:`trace_to_dict`."""
    version = payload.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported trace format version: {version!r} "
            f"(supported: {SUPPORTED_VERSIONS})")
    trace = Trace(payload.get("workload", ""))
    trace.metadata = dict(payload.get("metadata", {}))
    for raw in payload["events"]:
        trace.append(event_from_dict(raw))
    return trace


def save_trace(trace: Trace, path: str) -> None:
    """Write a trace to a JSON file."""
    with open(path, "w") as handle:
        json.dump(trace_to_dict(trace), handle)


def load_trace(path: str) -> Trace:
    """Read a trace from a JSON file."""
    with open(path) as handle:
        return trace_from_dict(json.load(handle))
