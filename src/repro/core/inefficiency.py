"""Hardware-inefficiency analysis (Table IV and Takeaway 6).

Thin orchestration over :mod:`repro.hwsim.kernels`: simulate the four
NVSA kernel archetypes on a device and render the counter matrix the
paper reports, plus the derived observations (symbolic ALU
utilization < 10%, DRAM near saturation, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.hwsim.device import DeviceSpec
from repro.hwsim.devices import RTX_2080TI
from repro.hwsim.kernels import (KernelCounters, nvsa_table4_kernels,
                                 simulate_kernel)

#: Table IV row labels in presentation order.
COUNTER_ROWS: Tuple[str, ...] = (
    "Compute Throughput (%)",
    "ALU Utilization (%)",
    "L1 Cache Throughput (%)",
    "L2 Cache Throughput (%)",
    "L1 Cache Hit Rate (%)",
    "L2 Cache Hit Rate (%)",
    "DRAM BW Utilization (%)",
)


@dataclass
class InefficiencyReport:
    """Our Table IV: counters per kernel plus derived observations."""

    device: str
    counters: List[KernelCounters]

    def matrix(self) -> Dict[str, Dict[str, float]]:
        """{row label: {kernel name: value}} in Table IV layout."""
        out: Dict[str, Dict[str, float]] = {row: {} for row in COUNTER_ROWS}
        for kernel in self.counters:
            for row, value in kernel.as_dict().items():
                out[row][kernel.name] = value
        return out

    def _mean(self, kind: str, metric: str) -> float:
        values = [getattr(k, metric) for k in self.counters
                  if k.kind == kind]
        return sum(values) / len(values) if values else 0.0

    @property
    def symbolic_alu_below_10pct(self) -> bool:
        """Paper: symbolic GPU ALU utilization is < 10%."""
        return self._mean("symbolic", "alu_utilization_pct") < 10.0

    @property
    def symbolic_dram_saturated(self) -> bool:
        """Paper: symbolic DRAM bandwidth utilization is ~90%."""
        return self._mean("symbolic", "dram_bw_utilization_pct") > 70.0

    @property
    def neural_compute_dominant(self) -> bool:
        """Paper: neural kernels show high compute utilization."""
        return self._mean("neural", "compute_throughput_pct") > 80.0

    @property
    def contrast_summary(self) -> Dict[str, float]:
        return {
            "neural_compute_mean": self._mean(
                "neural", "compute_throughput_pct"),
            "symbolic_compute_mean": self._mean(
                "symbolic", "compute_throughput_pct"),
            "neural_dram_mean": self._mean(
                "neural", "dram_bw_utilization_pct"),
            "symbolic_dram_mean": self._mean(
                "symbolic", "dram_bw_utilization_pct"),
        }


def analyze_inefficiency(device: DeviceSpec = RTX_2080TI) -> InefficiencyReport:
    """Simulate the Table IV kernels on ``device``."""
    counters = [simulate_kernel(profile, device)
                for profile in nvsa_table4_kernels(device)]
    return InefficiencyReport(device=device.name, counters=counters)


def analyze_trace_inefficiency(trace, device: DeviceSpec = RTX_2080TI,
                               group_by: str = "category"
                               ) -> InefficiencyReport:
    """Table IV generalized to a *real* trace.

    Where :func:`analyze_inefficiency` replays the four hand-modeled
    NVSA archetypes, this folds the trace's attributed events through
    the per-category counter synthesis in :mod:`repro.obs.kstats`
    (``group_by``: ``"category"`` or ``"span"``) and wraps the result
    in the same :class:`InefficiencyReport`, so the derived
    observations (symbolic ALU < 10%, DRAM saturation...) can be
    checked against any workload, not just NVSA.
    """
    # deferred: obs.kstats sits above core in the layering
    from repro.obs import kstats as _kstats
    if group_by == "category":
        stats = _kstats.kstats_by_category(trace, device)
    elif group_by == "span":
        stats = _kstats.kstats_by_span(trace, device)
    else:
        raise ValueError(f"unknown group_by: {group_by!r} "
                         "(choose 'category' or 'span')")
    return InefficiencyReport(device=device.name,
                              counters=[s.counters for s in stats])
