"""Operation-graph analysis (Fig. 4 and Takeaway 5).

Every trace carries producer links (each event knows which events
produced its inputs), so the operation-dependency DAG needs no workload
cooperation.  This module derives the paper's Fig. 4 observations:

* whether the symbolic phase *depends on* neural results (pipelined
  Neuro|Symbolic systems: NVSA/VSAIT/PrAE) or the symbolic knowledge is
  *compiled into* the neural structure (LNN/LTN/NLM/ZeroC);
* the latency-weighted critical path through the DAG and which phase
  dominates it;
* a serialization measure — critical-path time over total time — low
  parallelism being the paper's "complex control results in
  inefficiency" point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.core.profiler import PHASE_NEURAL, PHASE_SYMBOLIC, Trace
from repro.hwsim.device import DeviceSpec
from repro.hwsim.latency import project_trace


def build_graph(trace: Trace) -> "nx.DiGraph":
    """The operation-dependency DAG: nodes are event ids; an edge
    u -> v means v consumed a tensor produced by u."""
    graph = nx.DiGraph()
    for event in trace:
        graph.add_node(event.eid, name=event.name, phase=event.phase,
                       stage=event.stage, category=event.category.value)
    for event in trace:
        for parent in event.parents:
            if graph.has_node(parent):
                graph.add_edge(parent, event.eid)
    return graph


@dataclass
class OpGraphReport:
    """Fig. 4 summary for one workload."""

    workload: str
    num_nodes: int
    num_edges: int
    cross_phase_edges: int
    symbolic_depends_on_neural: bool
    neural_depends_on_symbolic: bool
    critical_path_time: float
    critical_path_length: int
    critical_path_phase_times: Dict[str, float]
    total_time: float
    max_width: int

    @property
    def serialization(self) -> float:
        """Critical-path time / total time (1.0 = fully serial)."""
        if self.total_time <= 0:
            return 0.0
        return self.critical_path_time / self.total_time

    @property
    def symbolic_on_critical_path(self) -> float:
        total = sum(self.critical_path_phase_times.values())
        if total <= 0:
            return 0.0
        return self.critical_path_phase_times.get(PHASE_SYMBOLIC,
                                                  0.0) / total


def analyze_graph(trace: Trace, device: DeviceSpec) -> OpGraphReport:
    """Build the DAG, weight it with projected latencies, and extract
    the critical path and phase-dependency structure."""
    graph = build_graph(trace)
    projected = project_trace(trace, device)
    latency: Dict[int, float] = {
        cost.event.eid: cost.total for cost in projected.costs}
    phase_of: Dict[int, str] = {e.eid: e.phase for e in trace}

    cross = 0
    sym_on_neural = False
    neural_on_sym = False
    for u, v in graph.edges():
        pu, pv = phase_of.get(u, ""), phase_of.get(v, "")
        if pu != pv:
            cross += 1
            if pu == PHASE_NEURAL and pv == PHASE_SYMBOLIC:
                sym_on_neural = True
            elif pu == PHASE_SYMBOLIC and pv == PHASE_NEURAL:
                neural_on_sym = True

    # longest (latency-weighted) path via one topological sweep
    best_time: Dict[int, float] = {}
    best_pred: Dict[int, Optional[int]] = {}
    for node in nx.topological_sort(graph):
        incoming = [(best_time[p], p) for p in graph.predecessors(node)
                    if p in best_time]
        base, pred = max(incoming, default=(0.0, None))
        best_time[node] = base + latency.get(node, 0.0)
        best_pred[node] = pred

    if best_time:
        end = max(best_time, key=best_time.get)
        path: List[int] = []
        cursor: Optional[int] = end
        while cursor is not None:
            path.append(cursor)
            cursor = best_pred[cursor]
        path.reverse()
        cp_time = best_time[end]
    else:
        path, cp_time = [], 0.0

    cp_phase_times: Dict[str, float] = {}
    for node in path:
        phase = phase_of.get(node, "")
        cp_phase_times[phase] = cp_phase_times.get(phase, 0.0) \
            + latency.get(node, 0.0)

    # width: max antichain estimate via generation sizes
    widths = [len(gen) for gen in nx.topological_generations(graph)]

    return OpGraphReport(
        workload=trace.workload,
        num_nodes=graph.number_of_nodes(),
        num_edges=graph.number_of_edges(),
        cross_phase_edges=cross,
        symbolic_depends_on_neural=sym_on_neural,
        neural_depends_on_symbolic=neural_on_sym,
        critical_path_time=cp_time,
        critical_path_length=len(path),
        critical_path_phase_times=cp_phase_times,
        total_time=projected.total_time,
        max_width=max(widths, default=0),
    )
