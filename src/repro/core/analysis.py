"""Latency and operator-category breakdowns (Figs. 2a and 3a).

These functions take a :class:`~repro.core.profiler.Trace` plus a
:class:`~repro.hwsim.device.DeviceSpec` and produce the paper's two
headline decompositions:

* :func:`latency_breakdown` — projected end-to-end latency split into
  neural vs. symbolic phases (Fig. 2a) and into fine-grained stages;
* :func:`operator_breakdown` — per-phase runtime share across the six
  operator categories of the Sec. IV-B taxonomy (Fig. 3a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.profiler import PHASE_NEURAL, PHASE_SYMBOLIC, Trace
from repro.core.taxonomy import CATEGORY_ORDER, OpCategory
from repro.hwsim.device import DeviceSpec
from repro.hwsim.latency import ProjectedTrace, project_trace


@dataclass
class LatencyBreakdown:
    """Fig. 2a row: one workload's projected latency decomposition."""

    workload: str
    device: str
    total_time: float
    phase_times: Dict[str, float]
    stage_times: Dict[str, float]
    event_counts: Dict[str, int]

    @property
    def neural_fraction(self) -> float:
        return self.phase_times.get(PHASE_NEURAL, 0.0) / self.total_time \
            if self.total_time else 0.0

    @property
    def symbolic_fraction(self) -> float:
        return self.phase_times.get(PHASE_SYMBOLIC, 0.0) / self.total_time \
            if self.total_time else 0.0


def latency_breakdown(trace: Trace, device: DeviceSpec) -> LatencyBreakdown:
    """Project ``trace`` onto ``device`` and decompose its latency."""
    projected = project_trace(trace, device)
    counts: Dict[str, int] = {}
    for event in trace:
        counts[event.phase] = counts.get(event.phase, 0) + 1
    return LatencyBreakdown(
        workload=trace.workload,
        device=device.name,
        total_time=projected.total_time,
        phase_times=projected.time_by_phase(),
        stage_times=projected.time_by_stage(),
        event_counts=counts,
    )


@dataclass
class OperatorBreakdown:
    """Fig. 3a row: category shares of one workload phase."""

    workload: str
    phase: str
    total_time: float
    category_times: Dict[OpCategory, float]

    def share(self, category: OpCategory) -> float:
        if self.total_time <= 0:
            return 0.0
        return self.category_times.get(category, 0.0) / self.total_time

    def shares(self) -> Dict[OpCategory, float]:
        return {cat: self.share(cat) for cat in CATEGORY_ORDER}

    @property
    def dominant_category(self) -> OpCategory:
        return max(CATEGORY_ORDER, key=self.share)


def operator_breakdown(trace: Trace, device: DeviceSpec,
                       phases: Optional[Sequence[str]] = None
                       ) -> List[OperatorBreakdown]:
    """Category runtime shares per phase (Fig. 3a)."""
    projected = project_trace(trace, device)
    if phases is None:
        phases = [p for p in trace.phases() if p]
    out: List[OperatorBreakdown] = []
    for phase in phases:
        cat_times = projected.time_by_category(phase)
        total = sum(cat_times.values())
        out.append(OperatorBreakdown(
            workload=trace.workload, phase=phase,
            total_time=total, category_times=cat_times))
    return out


def phase_compute_utilization(trace: Trace,
                              device: DeviceSpec) -> Dict[str, float]:
    """Achieved FLOP rate over device peak, per phase (Fig. 4's
    utilization contrast: neural windows keep the ALUs busy, symbolic
    windows leave them nearly idle)."""
    projected = project_trace(trace, device)
    flops: Dict[str, float] = {}
    time: Dict[str, float] = {}
    for cost in projected.costs:
        phase = cost.event.phase
        flops[phase] = flops.get(phase, 0.0) + cost.event.flops
        time[phase] = time.get(phase, 0.0) + cost.total
    return {
        phase: (flops[phase] / (time[phase] * device.peak_flops)
                if time[phase] > 0 else 0.0)
        for phase in flops
    }


def flops_breakdown(trace: Trace) -> Dict[str, float]:
    """FLOP share per phase — the paper's observation that NVSA's
    symbolic phase takes 92% of time but only ~19% of FLOPs."""
    per_phase = trace.flops_by_phase()
    total = sum(per_phase.values())
    if total <= 0:
        return {phase: 0.0 for phase in per_phase}
    return {phase: flops / total for phase, flops in per_phase.items()}
