"""Operator and paradigm taxonomies from the paper.

Two classification schemes drive the whole characterization suite:

* :class:`OpCategory` — the six compute-operator categories of
  Sec. IV-B (convolution, matrix multiplication, vector/element-wise
  tensor operation, data transformation, data movement, others).
  Every trace event emitted by :mod:`repro.tensor` carries one of
  these categories; Fig. 3a partitions runtime across them.

* :class:`NSParadigm` — Henry Kautz's five neuro-symbolic paradigms as
  used in Sec. II / Table I.  The registries at the bottom of this
  module reproduce Tables I and II as queryable data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple


class OpCategory(enum.Enum):
    """The six operator categories of the paper's Sec. IV-B taxonomy."""

    CONVOLUTION = "convolution"
    MATMUL = "matmul"
    ELEMENTWISE = "elementwise"
    TRANSFORM = "transform"
    MOVEMENT = "movement"
    OTHER = "other"

    @property
    def display_name(self) -> str:
        return _CATEGORY_DISPLAY[self]


_CATEGORY_DISPLAY: Dict[OpCategory, str] = {
    OpCategory.CONVOLUTION: "Convolution",
    OpCategory.MATMUL: "Matrix Multiplication",
    OpCategory.ELEMENTWISE: "Vector/Element-wise Tensor Op",
    OpCategory.TRANSFORM: "Data Transformation",
    OpCategory.MOVEMENT: "Data Movement",
    OpCategory.OTHER: "Others",
}

#: Stable presentation order used by reports and figures.
CATEGORY_ORDER: Tuple[OpCategory, ...] = (
    OpCategory.CONVOLUTION,
    OpCategory.MATMUL,
    OpCategory.ELEMENTWISE,
    OpCategory.TRANSFORM,
    OpCategory.MOVEMENT,
    OpCategory.OTHER,
)


#: Canonical op-name -> category registry: the single source of truth
#: for how every instrumented kernel maps onto the six-way taxonomy.
#: Parameterized op names are registered by their canonical stem — the
#: text before the ``[...]`` variant suffix (``fuzzy_and[lukasiewicz]``
#: -> ``fuzzy_and``) — and dynamic families by a ``*`` suffix wildcard
#: (``to_*`` covers ``to_gpu``/``to_tx2``/...).  ``run_op`` falls back
#: to this registry when a call site does not pass a category, and the
#: RL002 lint check cross-validates every explicit call site against it.
OP_CATEGORIES: Dict[str, OpCategory] = {
    # -- convolution ---------------------------------------------------------
    "conv2d": OpCategory.CONVOLUTION,
    # -- matmul family -------------------------------------------------------
    "matmul": OpCategory.MATMUL,
    "outer": OpCategory.MATMUL,
    "einsum": OpCategory.MATMUL,
    "linear": OpCategory.MATMUL,
    "spmm": OpCategory.MATMUL,
    "sddmm": OpCategory.MATMUL,
    # -- vector / element-wise ----------------------------------------------
    "add": OpCategory.ELEMENTWISE,
    "sub": OpCategory.ELEMENTWISE,
    "mul": OpCategory.ELEMENTWISE,
    "div": OpCategory.ELEMENTWISE,
    "pow": OpCategory.ELEMENTWISE,
    "maximum": OpCategory.ELEMENTWISE,
    "minimum": OpCategory.ELEMENTWISE,
    "neg": OpCategory.ELEMENTWISE,
    "exp": OpCategory.ELEMENTWISE,
    "log": OpCategory.ELEMENTWISE,
    "sqrt": OpCategory.ELEMENTWISE,
    "tanh": OpCategory.ELEMENTWISE,
    "abs": OpCategory.ELEMENTWISE,
    "sign": OpCategory.ELEMENTWISE,
    "clip": OpCategory.ELEMENTWISE,
    "reciprocal": OpCategory.ELEMENTWISE,
    "relu": OpCategory.ELEMENTWISE,
    "sigmoid": OpCategory.ELEMENTWISE,
    "softmax": OpCategory.ELEMENTWISE,
    "log_softmax": OpCategory.ELEMENTWISE,
    "greater": OpCategory.ELEMENTWISE,
    "less": OpCategory.ELEMENTWISE,
    "equal": OpCategory.ELEMENTWISE,
    "logical_and": OpCategory.ELEMENTWISE,
    "logical_or": OpCategory.ELEMENTWISE,
    "logical_not": OpCategory.ELEMENTWISE,
    "where": OpCategory.ELEMENTWISE,
    "sum": OpCategory.ELEMENTWISE,
    "mean": OpCategory.ELEMENTWISE,
    "max": OpCategory.ELEMENTWISE,
    "min": OpCategory.ELEMENTWISE,
    "prod": OpCategory.ELEMENTWISE,
    "norm": OpCategory.ELEMENTWISE,
    "cumsum": OpCategory.ELEMENTWISE,
    # spectral kernels: the paper files the FFT-backed binding algebra
    # under vector/element-wise tensor ops, so the standalone FFTs that
    # compose it carry the same category
    "rfft": OpCategory.ELEMENTWISE,
    "irfft": OpCategory.ELEMENTWISE,
    "circular_conv": OpCategory.ELEMENTWISE,
    "circular_corr": OpCategory.ELEMENTWISE,
    "complex_conj": OpCategory.ELEMENTWISE,
    "phasor_project": OpCategory.ELEMENTWISE,
    "phasor_similarity": OpCategory.ELEMENTWISE,
    "batchnorm2d": OpCategory.ELEMENTWISE,
    "maxpool2d": OpCategory.ELEMENTWISE,
    "avgpool2d": OpCategory.ELEMENTWISE,
    "global_avgpool": OpCategory.ELEMENTWISE,
    "csr_row_softmax": OpCategory.ELEMENTWISE,
    # -- data transformation -------------------------------------------------
    "argmax": OpCategory.TRANSFORM,
    "reshape": OpCategory.TRANSFORM,
    "transpose": OpCategory.TRANSFORM,
    "concat": OpCategory.TRANSFORM,
    "stack": OpCategory.TRANSFORM,
    "split": OpCategory.TRANSFORM,
    "pad": OpCategory.TRANSFORM,
    "take": OpCategory.TRANSFORM,
    "index": OpCategory.TRANSFORM,
    "masked_select": OpCategory.TRANSFORM,
    "broadcast_to": OpCategory.TRANSFORM,
    "roll": OpCategory.TRANSFORM,
    "flip": OpCategory.TRANSFORM,
    "sort": OpCategory.TRANSFORM,
    "argsort": OpCategory.TRANSFORM,
    "coalesce": OpCategory.TRANSFORM,
    "one_hot": OpCategory.TRANSFORM,
    "scatter_max": OpCategory.TRANSFORM,
    "scatter_min": OpCategory.TRANSFORM,
    "csr_to_dense": OpCategory.TRANSFORM,
    # -- data movement -------------------------------------------------------
    "copy": OpCategory.MOVEMENT,
    "astype": OpCategory.MOVEMENT,
    "to_host": OpCategory.MOVEMENT,
    "to_*": OpCategory.MOVEMENT,
    "assign": OpCategory.MOVEMENT,
    # -- others (fuzzy logic / symbolic) ------------------------------------
    "fuzzy_and": OpCategory.OTHER,
    "fuzzy_or": OpCategory.OTHER,
    "fuzzy_not": OpCategory.OTHER,
    "fuzzy_implies": OpCategory.OTHER,
    "csr_mask": OpCategory.OTHER,
}


def canonical_op_name(name: str) -> str:
    """Strip the ``[...]`` variant suffix from a recorded op name.

    ``fuzzy_and[lukasiewicz]`` -> ``fuzzy_and``; plain names pass
    through unchanged.
    """
    return name.split("[", 1)[0]


def category_for(name: str) -> OpCategory:
    """Resolve a (possibly parameterized) op name to its category.

    Lookup order: exact canonical name, then ``*`` suffix wildcards
    (longest prefix wins).  Raises ``KeyError`` for unregistered names
    so that uncategorized kernels fail loudly rather than skewing the
    Fig. 3a category split.
    """
    stem = canonical_op_name(name)
    try:
        return OP_CATEGORIES[stem]
    except KeyError:
        pass
    best: Tuple[int, OpCategory] = (-1, OpCategory.OTHER)
    for key, category in OP_CATEGORIES.items():
        if key.endswith("*") and stem.startswith(key[:-1]):
            if len(key) > best[0]:
                best = (len(key), category)
    if best[0] >= 0:
        return best[1]
    raise KeyError(
        f"op name {name!r} has no entry in repro.core.taxonomy."
        f"OP_CATEGORIES; register it so traces stay classifiable")


class NSParadigm(enum.Enum):
    """Kautz's five neuro-symbolic integration paradigms (Table I)."""

    SYMBOLIC_NEURO = "Symbolic[Neuro]"
    NEURO_PIPE_SYMBOLIC = "Neuro|Symbolic"
    NEURO_SYMBOLIC_TO_NEURO = "Neuro:Symbolic->Neuro"
    NEURO_SUB_SYMBOLIC = "Neuro_Symbolic"
    NEURO_BRACKET_SYMBOLIC = "Neuro[Symbolic]"

    @property
    def description(self) -> str:
        return _PARADIGM_DESCRIPTIONS[self]


_PARADIGM_DESCRIPTIONS: Dict[NSParadigm, str] = {
    NSParadigm.SYMBOLIC_NEURO: (
        "End-to-end symbolic system that uses neural models internally "
        "as a subroutine"
    ),
    NSParadigm.NEURO_PIPE_SYMBOLIC: (
        "Pipelined system that integrates neural and symbolic components "
        "where each component specializes in complementary tasks within "
        "the whole system"
    ),
    NSParadigm.NEURO_SYMBOLIC_TO_NEURO: (
        "End-to-end neural system that compiles symbolic knowledge "
        "externally into the neural structure"
    ),
    NSParadigm.NEURO_SUB_SYMBOLIC: (
        "Pipelined system that maps symbolic first-order logic onto "
        "embeddings serving as soft constraints or regularizers for the "
        "neural model"
    ),
    NSParadigm.NEURO_BRACKET_SYMBOLIC: (
        "End-to-end neural system that uses symbolic models internally "
        "as a subroutine"
    ),
}


@dataclass(frozen=True)
class AlgorithmEntry:
    """One row of Table I: a published neuro-symbolic algorithm."""

    name: str
    paradigm: NSParadigm
    underlying_operations: Tuple[str, ...]
    vector_format: bool
    reference: str = ""

    @property
    def vector_label(self) -> str:
        return "Vector" if self.vector_format else "Non-Vector"


#: Table I reproduced as data.  ``vector_format`` is the "If Vector"
#: column; ``underlying_operations`` is the "Underlying Operation" column.
ALGORITHM_REGISTRY: Tuple[AlgorithmEntry, ...] = (
    AlgorithmEntry("AlphaGo", NSParadigm.SYMBOLIC_NEURO,
                   ("NN", "MCTS"), True, "Silver et al. 2017"),
    AlgorithmEntry("NVSA", NSParadigm.NEURO_PIPE_SYMBOLIC,
                   ("NN", "mul", "add", "circular conv."), True,
                   "Hersche et al. 2023"),
    AlgorithmEntry("NeuPSL", NSParadigm.NEURO_PIPE_SYMBOLIC,
                   ("NN", "fuzzy logic"), True, "Pryor et al. 2022"),
    AlgorithmEntry("NSCL", NSParadigm.NEURO_PIPE_SYMBOLIC,
                   ("NN", "add", "mul", "div", "log"), True,
                   "Mao et al. 2019"),
    AlgorithmEntry("NeurASP", NSParadigm.NEURO_PIPE_SYMBOLIC,
                   ("NN", "logic rules"), False, "Yang et al. 2020"),
    AlgorithmEntry("ABL", NSParadigm.NEURO_PIPE_SYMBOLIC,
                   ("NN", "logic rules"), False, "Dai et al. 2019"),
    AlgorithmEntry("NSVQA", NSParadigm.NEURO_PIPE_SYMBOLIC,
                   ("NN", "pre-defined objects"), False, "Yi et al. 2018"),
    AlgorithmEntry("VSAIT", NSParadigm.NEURO_PIPE_SYMBOLIC,
                   ("NN", "binding/unbinding"), True, "Theiss et al. 2022"),
    AlgorithmEntry("PrAE", NSParadigm.NEURO_PIPE_SYMBOLIC,
                   ("NN", "logic rules", "prob. abduction"), True,
                   "Zhang et al. 2021"),
    AlgorithmEntry("LNN", NSParadigm.NEURO_PIPE_SYMBOLIC,
                   ("NN", "fuzzy logic"), True, "Riegel et al. 2020"),
    AlgorithmEntry("Symbolic Math", NSParadigm.NEURO_SYMBOLIC_TO_NEURO,
                   ("NN",), True, "Lample & Charton 2019"),
    AlgorithmEntry("Differentiable ILP", NSParadigm.NEURO_SYMBOLIC_TO_NEURO,
                   ("NN", "fuzzy logic"), True, "Evans & Grefenstette 2018"),
    AlgorithmEntry("LTN", NSParadigm.NEURO_SUB_SYMBOLIC,
                   ("NN", "fuzzy logic"), True, "Badreddine et al. 2022"),
    AlgorithmEntry("DON", NSParadigm.NEURO_SUB_SYMBOLIC,
                   ("NN",), True, "Hohenecker & Lukas 2020"),
    AlgorithmEntry("GNN+attention", NSParadigm.NEURO_SUB_SYMBOLIC,
                   ("NN", "SpMM", "SDDMM"), True, "Lamb et al. 2020"),
    AlgorithmEntry("ZeroC", NSParadigm.NEURO_BRACKET_SYMBOLIC,
                   ("NN (energy-based model, graph)",), True,
                   "Wu et al. 2022"),
    AlgorithmEntry("NLM", NSParadigm.NEURO_BRACKET_SYMBOLIC,
                   ("NN", "permutation"), True, "Dong et al. 2019"),
)


@dataclass(frozen=True)
class OperationExample:
    """One row of Table II: an underlying operation with an example."""

    operation: str
    workload: str
    example: str


#: Table II reproduced as data.
OPERATION_EXAMPLES: Tuple[OperationExample, ...] = (
    OperationExample(
        "Fuzzy logic", "LTN",
        "F = forall x (isCarnivore(x)) -> (isMammal(x)); truth degrees "
        "in [0, 1] combined with t-norms"),
    OperationExample(
        "Mul, Add, and Circular Conv.", "NVSA",
        "X_i in {+1,-1}^d -> binding X_i * X_j, bundling X_i + X_j, "
        "circular convolution for holographic composition"),
    OperationExample(
        "Logic rules", "ABL",
        "Domain: animal(dog). carnivore(dog). mammal(dog). "
        "Formula: mammal(x) AND carnivore(x). "
        "ABL: hypos(x) :- animal(x), mammal(x), carnivore(x)"),
    OperationExample(
        "Pre-defined objects", "NSVQA",
        "equal_color: (entry, entry) -> Boolean; "
        "equal_integer: (number, number) -> Boolean"),
)


def lookup_algorithm(name: str) -> AlgorithmEntry:
    """Return the Table I row for ``name`` (case-insensitive).

    Raises ``KeyError`` if the algorithm is not in the registry.
    """
    wanted = name.lower()
    for entry in ALGORITHM_REGISTRY:
        if entry.name.lower() == wanted:
            return entry
    raise KeyError(f"unknown algorithm: {name!r}")


def algorithms_by_paradigm(paradigm: NSParadigm) -> List[AlgorithmEntry]:
    """Return all Table I rows belonging to ``paradigm``."""
    return [e for e in ALGORITHM_REGISTRY if e.paradigm is paradigm]
