"""Task-size scaling analysis (Fig. 2c and Takeaway 2).

Sweeps a workload parameter (NVSA's RPM matrix size by default),
projects each run onto a device, and reports how total latency and the
neural/symbolic split evolve — the paper's observation that the ratio
stays roughly stable while total latency grows superlinearly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.profiler import PHASE_SYMBOLIC, Trace
from repro.hwsim.device import DeviceSpec
from repro.hwsim.latency import project_trace


@dataclass
class ScalePoint:
    """One sweep point of a scaling study."""

    parameter: Any
    total_time: float
    symbolic_fraction: float
    num_events: int
    total_flops: float
    total_bytes: int


@dataclass
class ScalingStudy:
    """A full sweep, with growth-factor helpers."""

    workload: str
    parameter_name: str
    device: str
    points: List[ScalePoint]

    def growth_factor(self) -> float:
        """Last total time over first total time."""
        if len(self.points) < 2 or self.points[0].total_time == 0:
            return 1.0
        return self.points[-1].total_time / self.points[0].total_time

    def symbolic_fraction_range(self) -> float:
        """Spread of the symbolic share across the sweep (stability)."""
        fracs = [p.symbolic_fraction for p in self.points]
        return max(fracs) - min(fracs) if fracs else 0.0


def sweep(workload_name: str, parameter_name: str,
          values: Sequence[Any], device: DeviceSpec,
          fixed_params: Optional[Dict[str, Any]] = None) -> ScalingStudy:
    """Run ``workload_name`` once per parameter value and project."""
    from repro.workloads import create  # deferred: avoids import cycle

    points: List[ScalePoint] = []
    for value in values:
        params = dict(fixed_params or {})
        params[parameter_name] = value
        workload = create(workload_name, **params)
        trace = workload.profile()
        projected = project_trace(trace, device)
        total = projected.total_time
        phase_times = projected.time_by_phase()
        symbolic = phase_times.get(PHASE_SYMBOLIC, 0.0)
        points.append(ScalePoint(
            parameter=value,
            total_time=total,
            symbolic_fraction=symbolic / total if total else 0.0,
            num_events=len(trace),
            total_flops=trace.total_flops,
            total_bytes=trace.total_bytes,
        ))
    return ScalingStudy(workload=workload_name,
                        parameter_name=parameter_name,
                        device=device.name, points=points)


def nvsa_task_size_study(device: DeviceSpec,
                         sizes: Sequence[int] = (2, 3),
                         seed: int = 0) -> ScalingStudy:
    """The Fig. 2c sweep: NVSA across RPM matrix sizes."""
    return sweep("nvsa", "matrix_size", list(sizes), device,
                 fixed_params={"seed": seed})
