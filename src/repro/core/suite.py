"""One-call characterization: the suite's public entry point.

``characterize(workload)`` runs the model under the profiler, validates
the trace, and produces every per-workload view the paper reports:
latency split, operator-category split, memory profile, roofline
boundedness, operation-graph structure, sparsity, and hardware
inefficiency context.  ``characterize_all()`` does it for the whole
Table III roster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.analysis import (LatencyBreakdown, OperatorBreakdown,
                                 flops_breakdown, latency_breakdown,
                                 operator_breakdown)
from repro.core.memory import MemoryProfile, memory_profile
from repro.core.opgraph import OpGraphReport, analyze_graph
from repro.core.profiler import PHASE_NEURAL, PHASE_SYMBOLIC, Trace
from repro.core.report import format_bytes, format_time, render_shares, render_table
from repro.core.rooflineplot import phase_boundedness
from repro.core.sparsity import StageSparsity, stage_sparsity
from repro.core.taxonomy import CATEGORY_ORDER
from repro.core.validate import validate_trace
from repro.hwsim.device import DeviceSpec
from repro.hwsim.devices import RTX_2080TI

if False:  # typing-only import; runtime import is deferred (cycle)
    from repro.workloads.base import Workload  # pragma: no cover


@dataclass
class WorkloadReport:
    """Everything the suite knows about one workload run."""

    workload: str
    device: str
    trace: Trace
    latency: LatencyBreakdown
    operators: List[OperatorBreakdown]
    memory: MemoryProfile
    boundedness: Dict[str, str]
    opgraph: OpGraphReport
    sparsity: List[StageSparsity]
    flops_shares: Dict[str, float]
    result: Dict[str, object] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable multi-section report."""
        total = self.latency.total_time
        if total > 0:
            phase_block = render_shares(
                {p: t / total for p, t in self.latency.phase_times.items()},
                title="latency by phase")
        else:
            # empty or all-zero-cost trace: shares are undefined
            phase_block = "\n".join(
                ["latency by phase"]
                + [f"{p}  n/a" for p in self.latency.phase_times])
        parts: List[str] = [
            f"=== {self.workload} on {self.device} ===",
            f"total projected latency: {format_time(total)}",
            "",
            phase_block,
            "",
        ]
        rows = []
        for ob in self.operators:
            shares = ob.shares()
            rows.append([ob.phase] + [f"{shares[c]*100:.1f}%"
                                      for c in CATEGORY_ORDER])
        parts.append(render_table(
            ["phase"] + [c.display_name for c in CATEGORY_ORDER], rows,
            title="operator-category runtime shares"))
        parts.append("")
        parts.append(
            f"memory: peak live {format_bytes(self.memory.peak_live_bytes)}, "
            f"params {format_bytes(self.memory.parameter_bytes)}, "
            f"codebooks {format_bytes(self.memory.codebook_bytes)}")
        parts.append(f"boundedness: {self.boundedness}")
        parts.append(
            f"op graph: {self.opgraph.num_nodes} nodes, "
            f"{self.opgraph.num_edges} edges, serialization "
            f"{self.opgraph.serialization:.2f}, symbolic share of "
            f"critical path {self.opgraph.symbolic_on_critical_path*100:.1f}%")
        if self.sparsity:
            rows = [[s.stage, f"{s.weighted_mean*100:.1f}%",
                     f"{s.mean*100:.1f}%", s.num_events]
                    for s in self.sparsity]
            parts.append(render_table(
                ["stage", "weighted sparsity", "mean sparsity", "events"],
                rows, title="per-stage output sparsity"))
        return "\n".join(parts)


def characterize_trace(trace: Trace,
                       device: DeviceSpec = RTX_2080TI,
                       validate: bool = True) -> WorkloadReport:
    """Derive every analysis view from an already-collected trace."""
    if validate:
        validate_trace(
            trace,
            expected_phases=(PHASE_NEURAL, PHASE_SYMBOLIC),
        ).raise_if_invalid()
    return WorkloadReport(
        workload=trace.workload,
        device=device.name,
        trace=trace,
        latency=latency_breakdown(trace, device),
        operators=operator_breakdown(trace, device),
        memory=memory_profile(trace),
        boundedness=phase_boundedness(trace, device),
        opgraph=analyze_graph(trace, device),
        sparsity=stage_sparsity(trace),
        flops_shares=flops_breakdown(trace),
        result=dict(trace.metadata.get("result", {})),  # type: ignore[arg-type]
    )


def characterize(workload: "Workload",
                 device: DeviceSpec = RTX_2080TI,
                 validate: bool = True) -> WorkloadReport:
    """Profile one workload and derive every analysis view."""
    return characterize_trace(workload.profile(), device, validate=validate)


class RosterError(RuntimeError):
    """One or more roster workloads failed; the rest still completed.

    Raised by :func:`characterize_all` *after* the full roster has been
    attempted, so callers keep every successful
    :class:`WorkloadReport` (``.reports``) alongside the per-workload
    failures (``.failures``, a list of ``(name, exception)`` pairs).
    For execution that degrades instead of raising, use
    :func:`repro.resilience.run_roster`.
    """

    def __init__(self, failures: List[tuple], reports: List[WorkloadReport]):
        self.failures = failures
        self.reports = reports
        succeeded = ", ".join(r.workload for r in reports) or "none"
        detail = "; ".join(
            f"{name}: {type(exc).__name__}: {exc}"
            for name, exc in failures)
        super().__init__(
            f"{len(failures)} of {len(failures) + len(reports)} roster "
            f"workloads failed ({detail}); succeeded: {succeeded}")


def characterize_all(device: DeviceSpec = RTX_2080TI,
                     names: Optional[Sequence[str]] = None,
                     **workload_params: object) -> List[WorkloadReport]:
    """Characterize every registered workload (the paper's roster).

    A raising workload no longer aborts the run: every workload is
    attempted, and failures are collected and re-raised at the end as
    one :class:`RosterError` summarizing who succeeded and who failed.
    """
    from repro.workloads import available, create  # deferred (cycle)

    if names is None:
        names = available()
    reports: List[WorkloadReport] = []
    failures: List[tuple] = []
    for name in names:
        try:
            reports.append(characterize(create(name, **workload_params),
                                        device))
        except Exception as exc:  # noqa: BLE001 - collected, re-raised below
            failures.append((name, exc))
    if failures:
        raise RosterError(failures, reports)
    return reports
