"""Trace data model: the suite's equivalent of the PyTorch Profiler.

The instrumented tensor runtime (:mod:`repro.tensor`) emits one
:class:`TraceEvent` per executed operation.  A :class:`Trace` is the
ordered collection of those events for one workload run, together with
phase annotations (``neural`` / ``symbolic``) and fine-grained stage
labels (e.g. ``rule_detection``).  All downstream analyses — latency
breakdown, operator-category split, memory accounting, roofline
placement, operation-graph extraction, sparsity — consume traces.

This module deliberately has no dependency on the tensor runtime so it
can be imported from anywhere without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.taxonomy import OpCategory

#: Phase labels used throughout the suite.
PHASE_NEURAL = "neural"
PHASE_SYMBOLIC = "symbolic"


@dataclass
class TraceEvent:
    """A single executed tensor operation.

    Attributes
    ----------
    eid:
        Monotonically increasing event id, unique within one trace.
    name:
        Operation name as dispatched (``matmul``, ``conv2d``, ``add`` ...).
    category:
        One of the paper's six operator categories.
    phase:
        ``"neural"``, ``"symbolic"``, or ``""`` when untagged.
    stage:
        Fine-grained module label within a phase (e.g. ``pmf_to_vsa``).
    flops:
        Floating point operations performed (0 for pure data ops).
    bytes_read / bytes_written:
        Memory traffic in bytes, computed from actual array sizes.
    input_shapes / output_shape:
        Array shapes involved.
    output_sparsity:
        Fraction of zero elements in the output array (0.0 = dense).
    wall_time:
        Measured host wall-clock seconds spent in the numpy kernel.
    parents:
        Event ids of the operations that produced this op's inputs;
        defines the operation-dependency DAG used by Fig. 4 analysis.
    live_bytes:
        Runtime-tracked live tensor bytes *after* this event, used by
        the memory analysis (Fig. 3b).
    t_start:
        Measured start timestamp, seconds since the process-wide
        tracing epoch (:func:`repro.obs.spans.now`).  Places the op on
        the same absolute timeline as the span tree; 0.0 in traces
        archived before the observability layer existed.
    sid:
        Span id of the innermost open span
        (:func:`repro.obs.spans.current_span`) when the op was
        dispatched — the attribution link that lets per-span analyses
        (:meth:`Trace.by_span`, :mod:`repro.obs.kstats`,
        :mod:`repro.obs.flame`) fold counters through the span tree.
        ``None`` for ops dispatched outside any span and in traces
        archived before counter attribution existed.
    """

    eid: int
    name: str
    category: OpCategory
    phase: str = ""
    stage: str = ""
    flops: float = 0.0
    bytes_read: int = 0
    bytes_written: int = 0
    input_shapes: Tuple[Tuple[int, ...], ...] = ()
    output_shape: Tuple[int, ...] = ()
    output_sparsity: float = 0.0
    wall_time: float = 0.0
    parents: Tuple[int, ...] = ()
    live_bytes: int = 0
    t_start: float = 0.0
    sid: Optional[int] = None

    @property
    def total_bytes(self) -> int:
        """Total memory traffic (read + written)."""
        return self.bytes_read + self.bytes_written

    @property
    def operational_intensity(self) -> float:
        """FLOPs per byte of traffic; 0 when the op moves no data."""
        if self.total_bytes == 0:
            return 0.0
        return self.flops / self.total_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent(eid={self.eid}, name={self.name!r}, "
            f"category={self.category.value}, phase={self.phase!r}, "
            f"flops={self.flops:.3g}, bytes={self.total_bytes})"
        )


class Trace:
    """An ordered sequence of :class:`TraceEvent` for one workload run."""

    def __init__(self, workload: str = "", events: Optional[Iterable[TraceEvent]] = None):
        self.workload = workload
        self.events: List[TraceEvent] = list(events) if events is not None else []
        #: free-form metadata recorded by workloads (task size, dims ...)
        self.metadata: Dict[str, object] = {}
        #: hierarchical timeline collected by the observability layer
        #: (:class:`repro.obs.spans.SpanRecord` instances); empty for
        #: traces built outside a profiling context.
        self.spans: List[object] = []

    # -- collection protocol -------------------------------------------------
    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __getitem__(self, idx: int) -> TraceEvent:
        return self.events[idx]

    # -- selection helpers ---------------------------------------------------
    def by_phase(self, phase: str) -> "Trace":
        """Sub-trace containing only events of ``phase``."""
        sub = Trace(self.workload, (e for e in self.events if e.phase == phase))
        sub.metadata = dict(self.metadata)
        return sub

    def by_stage(self, stage: str) -> "Trace":
        """Sub-trace containing only events of a fine-grained ``stage``."""
        sub = Trace(self.workload, (e for e in self.events if e.stage == stage))
        sub.metadata = dict(self.metadata)
        return sub

    def by_category(self, category: OpCategory) -> "Trace":
        """Sub-trace containing only events of one operator category."""
        sub = Trace(self.workload,
                    (e for e in self.events if e.category is category))
        sub.metadata = dict(self.metadata)
        return sub

    def by_span(self, sid: Optional[int]) -> "Trace":
        """Sub-trace of the events attributed to span ``sid``.

        Only *direct* attribution counts: an event recorded inside a
        child span belongs to the child, not to every ancestor.  Pass
        ``None`` to select events dispatched outside any span
        (including all events of pre-attribution archives).
        """
        sub = Trace(self.workload,
                    (e for e in self.events if e.sid == sid))
        sub.metadata = dict(self.metadata)
        return sub

    def span_rollup(self) -> Dict[Optional[int], Dict[str, float]]:
        """Per-span aggregate counters, keyed by span id.

        The single attribution path shared by :mod:`repro.obs.kstats`
        and ad-hoc analyses: for every distinct ``sid`` (including
        ``None`` for unattributed events) the rollup accumulates
        ``events``, ``flops``, ``bytes_read``, ``bytes_written``, and
        ``wall_time`` over the directly attributed events.
        """
        out: Dict[Optional[int], Dict[str, float]] = {}
        for event in self.events:
            bucket = out.setdefault(event.sid, {
                "events": 0.0, "flops": 0.0, "bytes_read": 0.0,
                "bytes_written": 0.0, "wall_time": 0.0})
            bucket["events"] += 1
            bucket["flops"] += event.flops
            bucket["bytes_read"] += event.bytes_read
            bucket["bytes_written"] += event.bytes_written
            bucket["wall_time"] += event.wall_time
        return out

    def phases(self) -> List[str]:
        """Distinct phase labels in first-appearance order."""
        seen: List[str] = []
        for event in self.events:
            if event.phase not in seen:
                seen.append(event.phase)
        return seen

    def stages(self) -> List[str]:
        """Distinct stage labels in first-appearance order."""
        seen: List[str] = []
        for event in self.events:
            if event.stage and event.stage not in seen:
                seen.append(event.stage)
        return seen

    # -- aggregate statistics ------------------------------------------------
    @property
    def total_flops(self) -> float:
        return sum(e.flops for e in self.events)

    @property
    def total_bytes(self) -> int:
        return sum(e.total_bytes for e in self.events)

    @property
    def total_wall_time(self) -> float:
        return sum(e.wall_time for e in self.events)

    @property
    def peak_live_bytes(self) -> int:
        return max((e.live_bytes for e in self.events), default=0)

    def flops_by_phase(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for event in self.events:
            out[event.phase] = out.get(event.phase, 0.0) + event.flops
        return out

    def count_by_name(self) -> Dict[str, int]:
        """Invocation counts per op name (function-level statistics)."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.name] = out.get(event.name, 0) + 1
        return out

    def summary(self) -> Dict[str, object]:
        """Compact headline statistics for reports."""
        return {
            "workload": self.workload,
            "events": len(self.events),
            "total_flops": self.total_flops,
            "total_bytes": self.total_bytes,
            "wall_time_s": self.total_wall_time,
            "peak_live_bytes": self.peak_live_bytes,
            "phases": self.phases(),
        }


def merge_traces(traces: Sequence[Trace], workload: str = "") -> Trace:
    """Concatenate ``traces`` into one, renumbering event ids.

    Parent links are remapped so the dependency DAG stays consistent.
    Span attribution (``sid``) is dropped: span ids are only unique
    within one collected run, so a merged trace cannot attribute
    events across its sources' separate span trees.
    """
    merged = Trace(workload)
    offset = 0
    for trace in traces:
        id_map = {e.eid: e.eid + offset for e in trace.events}
        for event in trace.events:
            merged.append(TraceEvent(
                eid=id_map[event.eid],
                name=event.name,
                category=event.category,
                phase=event.phase,
                stage=event.stage,
                flops=event.flops,
                bytes_read=event.bytes_read,
                bytes_written=event.bytes_written,
                input_shapes=event.input_shapes,
                output_shape=event.output_shape,
                output_sparsity=event.output_sparsity,
                wall_time=event.wall_time,
                parents=tuple(id_map[p] for p in event.parents if p in id_map),
                live_bytes=event.live_bytes,
                t_start=event.t_start,
            ))
        if trace.events:
            offset = merged.events[-1].eid + 1
    return merged
