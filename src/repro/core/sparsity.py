"""Sparsity analysis (Fig. 5 and Takeaway 7).

The paper characterizes the sparsity of NVSA's symbolic stages —
PMF-to-VSA transform, probability computation, VSA-to-PMF transform —
across reasoning-rule attributes, finding high (>95%), unstructured,
attribute-varying sparsity.  The runtime already measures the zero
fraction of every op's output, so this module just aggregates it:

* by stage (the Fig. 5 x-axis groups);
* by attribute, by re-running a workload with its rules pinned to one
  attribute setting per sweep point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.profiler import Trace


@dataclass
class StageSparsity:
    """Sparsity statistics of one stage's tensor outputs."""

    stage: str
    mean: float
    maximum: float
    minimum: float
    weighted_mean: float   # weighted by output element count
    num_events: int


def stage_sparsity(trace: Trace,
                   stages: Optional[Sequence[str]] = None,
                   min_elements: int = 2,
                   last_dim_in: Optional[Sequence[int]] = None
                   ) -> List[StageSparsity]:
    """Aggregate output sparsity per stage.

    Events with fewer than ``min_elements`` output elements are ignored
    (scalar scores would skew the statistics).  ``last_dim_in``
    restricts the aggregation to probability-shaped tensors — outputs
    whose final dimension is one of the given domain sizes — which is
    how Fig. 5 isolates NVSA's sparse probabilistic representations
    from the (dense by construction) hypervectors flowing beside them.
    """
    if stages is None:
        stages = trace.stages()
    allowed = set(last_dim_in) if last_dim_in is not None else None
    out: List[StageSparsity] = []
    for stage in stages:
        values: List[float] = []
        weights: List[float] = []
        for event in trace:
            if event.stage != stage:
                continue
            elements = int(np.prod(event.output_shape)) \
                if event.output_shape else 1
            if elements < min_elements:
                continue
            if allowed is not None:
                if not event.output_shape or \
                        event.output_shape[-1] not in allowed:
                    continue
            values.append(event.output_sparsity)
            weights.append(float(elements))
        if not values:
            continue
        arr = np.asarray(values)
        w = np.asarray(weights)
        out.append(StageSparsity(
            stage=stage,
            mean=float(arr.mean()),
            maximum=float(arr.max()),
            minimum=float(arr.min()),
            weighted_mean=float((arr * w).sum() / w.sum()),
            num_events=len(values),
        ))
    return out


def overall_sparsity(trace: Trace, phase: Optional[str] = None) -> float:
    """Element-weighted mean output sparsity of a trace (or phase)."""
    num = 0.0
    den = 0.0
    for event in trace:
        if phase is not None and event.phase != phase:
            continue
        elements = float(np.prod(event.output_shape)) \
            if event.output_shape else 1.0
        num += event.output_sparsity * elements
        den += elements
    return num / den if den else 0.0


#: The Fig. 5 stage labels mapped to our NVSA trace stages.
FIG5_STAGES: Dict[str, str] = {
    "pmf_to_vsa": "PMF-to-VSA transform",
    "answer_selection": "probability computation",
    "vsa_to_pmf": "VSA-to-PMF transform",
}


def nvsa_attribute_sweep(matrix_size: int = 3, seed: int = 0,
                         ) -> Dict[str, Dict[str, float]]:
    """Fig. 5: NVSA symbolic-stage sparsity per rule attribute.

    For each attribute, generates an RPM problem whose *other*
    attributes are pinned to ``constant`` so the sweep isolates the
    attribute's rule dynamics, runs NVSA, and reports the weighted mean
    sparsity of the probability-shaped tensors in the three Fig. 5
    stages (PMF-to-VSA, probability computation, VSA-to-PMF).
    """
    from repro.datasets.rpm import ATTRIBUTES, generate_problem
    from repro.workloads.nvsa import NVSAWorkload

    domains = set(ATTRIBUTES.values())
    joint = 1
    for d in ATTRIBUTES.values():
        joint *= d
    domains.add(joint)

    results: Dict[str, Dict[str, float]] = {}
    for attr in ATTRIBUTES:
        workload = NVSAWorkload(matrix_size=matrix_size, seed=seed)
        workload.build()
        rules = {other: "constant" for other in ATTRIBUTES if other != attr}
        workload.problem = generate_problem(matrix_size, seed=seed + 17,
                                            rules=rules)
        trace = workload.profile()
        per_stage: Dict[str, float] = {}
        for stage, label in FIG5_STAGES.items():
            stats = stage_sparsity(trace, [stage],
                                   last_dim_in=sorted(domains))
            per_stage[label] = stats[0].maximum if stats else 0.0
        results[attr] = per_stage
    return results
