"""Structural trace validation.

Sanity checks that every analysis relies on: monotone event ids,
parent links pointing backwards, non-negative resource counters,
phase/stage labels drawn from the expected vocabulary.  Benchmarks run
these on freshly-collected traces so a broken workload fails loudly
rather than producing quietly-wrong figures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.profiler import Trace


@dataclass
class ValidationResult:
    """Outcome of validating one trace."""

    workload: str
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_invalid(self) -> None:
        if self.errors:
            raise ValueError(
                f"trace for {self.workload!r} failed validation:\n  "
                + "\n  ".join(self.errors))


def validate_trace(trace: Trace,
                   expected_phases: Optional[Sequence[str]] = None,
                   require_flops: bool = True) -> ValidationResult:
    """Run all structural checks on ``trace``."""
    result = ValidationResult(workload=trace.workload)
    err = result.errors.append

    if not trace.events:
        err("trace is empty")
        return result

    seen_ids = set()
    previous = -1
    for event in trace:
        if event.eid in seen_ids:
            err(f"duplicate event id {event.eid}")
        seen_ids.add(event.eid)
        if event.eid <= previous:
            err(f"event ids not strictly increasing at {event.eid}")
        previous = event.eid

        for parent in event.parents:
            if parent >= event.eid:
                err(f"event {event.eid} has non-causal parent {parent}")
            if parent not in seen_ids:
                err(f"event {event.eid} has unknown parent {parent}")

        # non-finite counters must be rejected explicitly: NaN slips
        # through every `< 0` / range comparison below.
        for counter in ("flops", "bytes_read", "bytes_written",
                        "wall_time", "live_bytes", "output_sparsity"):
            if not math.isfinite(float(getattr(event, counter))):
                err(f"event {event.eid} ({event.name}) has non-finite "
                    f"{counter}: {getattr(event, counter)}")

        if event.flops < 0:
            err(f"event {event.eid} ({event.name}) has negative flops")
        if event.bytes_read < 0 or event.bytes_written < 0:
            err(f"event {event.eid} ({event.name}) has negative bytes")
        if math.isfinite(event.output_sparsity) \
                and not (0.0 <= event.output_sparsity <= 1.0):
            err(f"event {event.eid} sparsity out of range: "
                f"{event.output_sparsity}")
        if event.wall_time < 0:
            err(f"event {event.eid} has negative wall time")
        if event.live_bytes < 0:
            err(f"event {event.eid} has negative live bytes")

    if expected_phases is not None:
        actual = set(p for p in trace.phases() if p)
        missing = set(expected_phases) - actual
        if missing:
            err(f"missing expected phases: {sorted(missing)}")

    if require_flops and trace.total_flops <= 0:
        err("trace performed no floating-point work")

    return result
