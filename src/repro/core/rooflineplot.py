"""Roofline placement of workload components (Fig. 3c).

Wraps :mod:`repro.hwsim.roofline` with the Fig. 3c presentation: one
point per (workload, phase) on the chosen device's roofline, plus the
paper's headline check — neural components compute-bound, symbolic
components memory-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.profiler import PHASE_NEURAL, PHASE_SYMBOLIC, Trace
from repro.hwsim.device import DeviceSpec
from repro.hwsim.roofline import RooflinePoint, roofline_points


@dataclass
class RooflineFigure:
    """All points of a Fig. 3c-style plot."""

    device: str
    ridge_point: float
    points: List[RooflinePoint]

    def by_label(self) -> Dict[str, RooflinePoint]:
        return {p.label: p for p in self.points}

    def bound_of(self, label: str) -> str:
        return self.by_label()[label].bound


def roofline_figure(traces: Sequence[Trace],
                    device: DeviceSpec) -> RooflineFigure:
    """One roofline point per (workload, phase)."""
    points: List[RooflinePoint] = []
    for trace in traces:
        for point in roofline_points(trace, device, group_by="phase"):
            point.label = f"{trace.workload}:{point.label}"
            points.append(point)
    return RooflineFigure(device=device.name,
                          ridge_point=device.ridge_point,
                          points=points)


def phase_boundedness(trace: Trace, device: DeviceSpec) -> Dict[str, str]:
    """{phase: 'compute'|'memory'} for one workload (Takeaway 4).

    Time-weighted: a phase is memory-bound when more than half of its
    projected runtime is spent in events whose memory roof exceeds the
    compute roof.  (A single aggregate OI point can misclassify a phase
    whose time is dominated by a few high-intensity kernels.)
    """
    from repro.hwsim.latency import project_trace
    projected = project_trace(trace, device)
    out: Dict[str, str] = {}
    for phase in trace.phases():
        if not phase:
            continue
        fraction = projected.memory_bound_fraction(phase)
        out[phase] = "memory" if fraction > 0.5 else "compute"
    return out
