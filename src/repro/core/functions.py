"""Function-level profiling views (paper Sec. IV-A).

The paper's methodology starts with "function-level profiling to
capture statistics such as runtime, memory, invocation counts, tensor
sizes, and sparsity of each model".  This module renders exactly that:
a per-op-name aggregation table (the PyTorch-Profiler ``key_averages``
equivalent) plus a ``chrome://tracing`` exporter for timeline
inspection.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.profiler import Trace
from repro.core.taxonomy import OpCategory
from repro.hwsim.device import DeviceSpec
from repro.hwsim.latency import project_trace


@dataclass
class FunctionStats:
    """Aggregated statistics of one op name (one 'function')."""

    name: str
    category: OpCategory
    calls: int
    total_time: float
    total_flops: float
    total_bytes: int
    max_output_elements: int
    mean_sparsity: float

    @property
    def mean_time(self) -> float:
        return self.total_time / self.calls if self.calls else 0.0


def function_table(trace: Trace, device: DeviceSpec,
                   phase: Optional[str] = None,
                   sort_by: str = "total_time") -> List[FunctionStats]:
    """Aggregate the trace per op name, sorted by ``sort_by``."""
    projected = project_trace(trace, device)
    buckets: Dict[str, FunctionStats] = {}
    for cost in projected.costs:
        event = cost.event
        if phase is not None and event.phase != phase:
            continue
        stats = buckets.get(event.name)
        elements = int(np.prod(event.output_shape)) \
            if event.output_shape else 0
        if stats is None:
            buckets[event.name] = FunctionStats(
                name=event.name, category=event.category, calls=1,
                total_time=cost.total, total_flops=event.flops,
                total_bytes=event.total_bytes,
                max_output_elements=elements,
                mean_sparsity=event.output_sparsity)
        else:
            n = stats.calls
            stats.calls += 1
            stats.total_time += cost.total
            stats.total_flops += event.flops
            stats.total_bytes += event.total_bytes
            stats.max_output_elements = max(stats.max_output_elements,
                                            elements)
            stats.mean_sparsity = (stats.mean_sparsity * n
                                   + event.output_sparsity) / (n + 1)
    if not hasattr(FunctionStats, sort_by) and sort_by not in (
            "calls", "total_time", "total_flops", "total_bytes"):
        raise ValueError(f"unknown sort key {sort_by!r}")
    return sorted(buckets.values(),
                  key=lambda s: getattr(s, sort_by), reverse=True)


def render_function_table(stats: List[FunctionStats],
                          top: int = 15) -> str:
    """Text rendering (the profiler's key-averages table)."""
    from repro.core.report import format_bytes, format_time, render_table
    rows = []
    for s in stats[:top]:
        rows.append([s.name, s.category.value, s.calls,
                     format_time(s.total_time), format_time(s.mean_time),
                     f"{s.total_flops:.3g}", format_bytes(s.total_bytes),
                     f"{s.mean_sparsity * 100:.0f}%"])
    return render_table(
        ["op", "category", "calls", "total time", "mean time", "FLOPs",
         "bytes", "sparsity"],
        rows, title="function-level statistics")


def to_chrome_trace(trace: Trace, device: DeviceSpec) -> str:
    """Serialize to the chrome://tracing JSON format.

    Events are laid out serially on a per-phase track using projected
    durations; load the output in chrome://tracing or Perfetto.
    """
    projected = project_trace(trace, device)
    tracks: Dict[str, int] = {}
    cursors: Dict[str, float] = {}
    events: List[dict] = []
    for cost in projected.costs:
        event = cost.event
        phase = event.phase or "untagged"
        tid = tracks.setdefault(phase, len(tracks) + 1)
        start = cursors.get(phase, 0.0)
        duration_us = cost.total * 1e6
        events.append({
            "name": event.name,
            "cat": event.category.value,
            "ph": "X",
            "ts": start,
            "dur": duration_us,
            "pid": 1,
            "tid": tid,
            "args": {
                "stage": event.stage,
                "flops": event.flops,
                "bytes": event.total_bytes,
                "shape": list(event.output_shape),
                "sparsity": round(event.output_sparsity, 4),
            },
        })
        cursors[phase] = start + duration_us
    metadata = [
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
         "args": {"name": phase}}
        for phase, tid in tracks.items()
    ]
    return json.dumps({"traceEvents": metadata + events,
                       "displayTimeUnit": "ms"})
