"""Plain-text rendering of tables and figure series.

Benchmarks print through these helpers so every experiment produces
the same row/column layout the paper reports, without any plotting
dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 2) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3g}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
                 title: str = "", precision: int = 2) -> str:
    """Monospace table with column alignment."""
    text_rows = [[format_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(cells)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)


def render_bar(fraction: float, width: int = 30, fill: str = "#") -> str:
    """ASCII bar for share plots: 0.5 -> '###############...'."""
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return fill * filled + "." * (width - filled)


def render_shares(shares: Dict[str, float], width: int = 30,
                  title: str = "") -> str:
    """A labelled ASCII bar chart of fractional shares."""
    parts: List[str] = []
    if title:
        parts.append(title)
    label_width = max((len(k) for k in shares), default=0)
    for label, fraction in shares.items():
        bar = render_bar(fraction, width)
        parts.append(f"{label.ljust(label_width)}  {bar} {fraction*100:5.1f}%")
    return "\n".join(parts)


def format_time(seconds: float) -> str:
    """Human latency formatting: 0.0042 -> '4.20 ms'."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds*1e3:.2f} ms"
    if seconds >= 1e-6:
        return f"{seconds*1e6:.2f} us"
    return f"{seconds*1e9:.0f} ns"


def format_bytes(num_bytes: float) -> str:
    """Human size formatting: 5767168 -> '5.50 MiB'."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.2f} {unit}" if unit != "B" \
                else f"{int(value)} B"
        value /= 1024
    return f"{value:.2f} GiB"  # pragma: no cover - unreachable
