"""The paper's contribution: the characterization suite itself.

Submodules and their public names are loaded lazily (PEP 562) so that
importing a leaf module such as :mod:`repro.core.taxonomy` — which the
substrates depend on — does not drag in the analysis modules that
themselves depend on the substrates.
"""

from __future__ import annotations

import importlib
from typing import Dict

_SUBMODULES = (
    "analysis", "functions", "inefficiency", "memory", "opgraph",
    "profiler", "report", "rooflineplot", "scaling", "serialize",
    "sparsity", "suite", "taxonomy", "validate",
)

#: public name -> defining submodule
_EXPORTS: Dict[str, str] = {
    "LatencyBreakdown": "analysis", "OperatorBreakdown": "analysis",
    "flops_breakdown": "analysis", "latency_breakdown": "analysis",
    "operator_breakdown": "analysis",
    "FunctionStats": "functions", "function_table": "functions",
    "render_function_table": "functions", "to_chrome_trace": "functions",
    "InefficiencyReport": "inefficiency",
    "analyze_inefficiency": "inefficiency",
    "MemoryProfile": "memory", "live_bytes_series": "memory",
    "memory_profile": "memory",
    "OpGraphReport": "opgraph", "analyze_graph": "opgraph",
    "build_graph": "opgraph",
    "PHASE_NEURAL": "profiler", "PHASE_SYMBOLIC": "profiler",
    "Trace": "profiler", "TraceEvent": "profiler",
    "merge_traces": "profiler",
    "RooflineFigure": "rooflineplot", "phase_boundedness": "rooflineplot",
    "roofline_figure": "rooflineplot",
    "ScalePoint": "scaling", "ScalingStudy": "scaling",
    "nvsa_task_size_study": "scaling", "sweep": "scaling",
    "load_trace": "serialize", "save_trace": "serialize",
    "trace_from_dict": "serialize", "trace_to_dict": "serialize",
    "phase_compute_utilization": "analysis",
    "StageSparsity": "sparsity", "nvsa_attribute_sweep": "sparsity",
    "overall_sparsity": "sparsity", "stage_sparsity": "sparsity",
    "WorkloadReport": "suite", "characterize": "suite",
    "characterize_all": "suite", "characterize_trace": "suite",
    "RosterError": "suite",
    "ALGORITHM_REGISTRY": "taxonomy", "CATEGORY_ORDER": "taxonomy",
    "OPERATION_EXAMPLES": "taxonomy", "AlgorithmEntry": "taxonomy",
    "NSParadigm": "taxonomy", "OpCategory": "taxonomy",
    "algorithms_by_paradigm": "taxonomy", "lookup_algorithm": "taxonomy",
    "ValidationResult": "validate", "validate_trace": "validate",
}

__all__ = list(_SUBMODULES) + list(_EXPORTS)


def __getattr__(name: str):
    if name in _SUBMODULES:
        return importlib.import_module(f"repro.core.{name}")
    if name in _EXPORTS:
        module = importlib.import_module(f"repro.core.{_EXPORTS[name]}")
        return getattr(module, name)
    raise AttributeError(f"module 'repro.core' has no attribute {name!r}")


def __dir__():
    return sorted(__all__)
