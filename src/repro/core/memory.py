"""Memory analysis (Fig. 3b and Takeaway 4).

Two views:

* **dynamic** — live intermediate-tensor bytes over the run (tracked by
  the runtime's allocation counter), split per phase: the paper notes
  PrAE's symbolic phase holds large intermediates (exhaustive search)
  while ZeroC's neural ensembles dominate its usage;
* **static footprint** — neural parameter bytes vs. symbolic
  codebook/knowledge bytes: "neural weights and symbolic codebooks
  typically consume more storage ... >90% memory footprint in NVSA".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.profiler import Trace


@dataclass
class MemoryProfile:
    """One workload's Fig. 3b entry."""

    workload: str
    peak_live_bytes: int
    peak_live_by_phase: Dict[str, int]
    traffic_by_phase: Dict[str, int]
    parameter_bytes: int
    codebook_bytes: int

    @property
    def static_footprint(self) -> int:
        return self.parameter_bytes + self.codebook_bytes

    @property
    def static_fraction(self) -> float:
        """Share of (static + peak dynamic) memory that is weights and
        codebooks — the paper's '>90% of footprint' NVSA observation."""
        total = self.static_footprint + self.peak_live_bytes
        return self.static_footprint / total if total else 0.0

    @property
    def codebook_fraction(self) -> float:
        if self.static_footprint == 0:
            return 0.0
        return self.codebook_bytes / self.static_footprint

    def phase_peak_fraction(self, phase: str) -> float:
        peak = max(self.peak_live_by_phase.values(), default=0)
        if peak == 0:
            return 0.0
        return self.peak_live_by_phase.get(phase, 0) / peak


def memory_profile(trace: Trace) -> MemoryProfile:
    """Extract the memory view from a trace (uses the live-bytes
    samples each event carries plus the workload's static accounting
    stored in trace metadata)."""
    peak_by_phase: Dict[str, int] = {}
    traffic: Dict[str, int] = {}
    for event in trace:
        if event.live_bytes > peak_by_phase.get(event.phase, 0):
            peak_by_phase[event.phase] = event.live_bytes
        traffic[event.phase] = traffic.get(event.phase, 0) + event.total_bytes
    return MemoryProfile(
        workload=trace.workload,
        peak_live_bytes=max(peak_by_phase.values(), default=0),
        peak_live_by_phase=peak_by_phase,
        traffic_by_phase=traffic,
        parameter_bytes=int(trace.metadata.get("parameter_bytes", 0)),
        codebook_bytes=int(trace.metadata.get("codebook_bytes", 0)),
    )


def live_bytes_series(trace: Trace) -> List[Tuple[int, str, int]]:
    """(event id, phase, live bytes) samples for plotting usage curves."""
    return [(e.eid, e.phase, e.live_bytes) for e in trace]
