"""What-if study: how much would the paper's recommended optimizations
actually buy?  (Paper Sec. V recommendations 2-6.)

Applies the suite's what-if models — symbolic processing units,
quantization, sparsity-aware execution, compute-in-memory, bandwidth
scaling, parallel scheduling — to every workload and ranks the wins.

Run:  python examples/whatif_accelerator.py
"""

from repro.core.analysis import latency_breakdown
from repro.core.report import format_time, render_table
from repro.hwsim import RTX_2080TI
from repro.hwsim.whatif import (compute_in_memory, parallel_schedule_bound,
                                quantize_trace, symbolic_accelerator)
from repro.workloads import PAPER_ORDER, create


def main() -> None:
    accel_device = symbolic_accelerator(RTX_2080TI)
    cim_device = compute_in_memory(RTX_2080TI)

    rows = []
    for name in PAPER_ORDER:
        trace = create(name, seed=0).profile()
        base = latency_breakdown(trace, RTX_2080TI)
        accel = latency_breakdown(trace, accel_device)
        quant = latency_breakdown(quantize_trace(trace, 8), RTX_2080TI)
        cim = latency_breakdown(trace, cim_device)
        parallel = parallel_schedule_bound(trace, RTX_2080TI)
        rows.append([
            name.upper(),
            format_time(base.total_time),
            f"{base.total_time / accel.total_time:.2f}x",
            f"{base.total_time / quant.total_time:.2f}x",
            f"{base.total_time / cim.total_time:.2f}x",
            f"{parallel:.2f}x",
        ])
    print(render_table(
        ["workload", "baseline", "symbolic unit", "INT8", "CIM",
         "parallel bound"],
        rows,
        title="Speedups from the paper's recommendations (RTX model)"))

    print()
    print("Reading the table:")
    print(" * symbolic-unit gains track the symbolic latency share —")
    print("   NVSA/PrAE (>85% symbolic, small kernels) gain the most;")
    print(" * INT8/CIM gains track memory-boundedness — VSAIT's")
    print("   streaming hypervector algebra benefits, launch-bound")
    print("   workloads barely move;")
    print(" * the parallel bound shows how much independence the")
    print("   operation graph leaves for co-scheduling (Rec. 5).")


if __name__ == "__main__":
    main()
