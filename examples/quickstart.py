"""Quickstart: profile one neuro-symbolic workload and print every
characterization view the suite produces.

Run:  python examples/quickstart.py [workload]

``workload`` is any of: lnn, ltn, nvsa, nlm, vsait, zeroc, prae
(default nvsa).
"""

import sys

from repro.core.report import format_time
from repro.core.suite import characterize
from repro.hwsim import JETSON_TX2, RTX_2080TI, project_trace
from repro.workloads import available, create


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "nvsa"
    if name not in available():
        raise SystemExit(f"unknown workload {name!r}; "
                         f"choose from {available()}")

    print(f"characterizing {name!r} ...")
    workload = create(name, seed=0)
    report = characterize(workload)

    # the one-call report: latency split, operator categories, memory,
    # boundedness, operation graph, sparsity
    print()
    print(report.render())

    # task-level result (the workload actually solves its task)
    print()
    print("task result:", report.result)

    # projecting the same trace onto an edge SoC
    edge = project_trace(report.trace, JETSON_TX2)
    desktop = project_trace(report.trace, RTX_2080TI)
    print()
    print(f"projected latency on {RTX_2080TI.name}: "
          f"{format_time(desktop.total_time)}")
    print(f"projected latency on {JETSON_TX2.name}:  "
          f"{format_time(edge.total_time)} "
          f"({edge.total_time / desktop.total_time:.1f}x slower)")


if __name__ == "__main__":
    main()
