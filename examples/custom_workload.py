"""Authoring a new neuro-symbolic workload for the suite.

Implements a small Neuro|Symbolic digit-sum checker in the style of
DeepProbLog's MNIST-addition benchmark: a ConvNet classifies two digit
images (neural), then a Horn-rule knowledge base verifies the claimed
sum (symbolic).  Registering it makes every analysis in the suite —
latency split, operator taxonomy, roofline, operation graph — work on
it unchanged.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro import tensor as T
from repro.core.suite import characterize
from repro.core.taxonomy import NSParadigm, OpCategory
from repro.logic import HornRule, KnowledgeBase, Predicate, Variable
from repro.nn import small_convnet
from repro.tensor.dispatch import record_region
from repro.workloads.base import Workload, WorkloadInfo, register


def render_digit(value: int, rng: np.random.Generator) -> np.ndarray:
    """A crude 16x16 'digit': value encoded as bar count + noise."""
    img = np.zeros((1, 16, 16), dtype=np.float32)
    for bar in range(value + 1):
        col = 1 + bar
        img[0, 2:14, col] = 1.0
    img += rng.normal(0, 0.05, img.shape).astype(np.float32)
    return img


@register("digit_sum")
class DigitSumWorkload(Workload):
    """Neural digit perception + symbolic sum verification."""

    info = WorkloadInfo(
        name="digit_sum",
        full_name="Digit-Sum Checker (DeepProbLog-style)",
        paradigm=NSParadigm.NEURO_PIPE_SYMBOLIC,
        learning_approach="Supervised",
        application="Program-verified perception",
        advantage="Symbolic verification of neural claims",
        datasets=("synthetic digits",),
        datatype="FP32",
        neural_workload="ConvNet",
        symbolic_workload="Horn-rule arithmetic",
    )

    def __init__(self, num_pairs: int = 8, seed: int = 0):
        super().__init__(num_pairs=num_pairs, seed=seed)
        self.num_pairs = num_pairs
        self.seed = seed

    def _build(self) -> None:
        rng = np.random.default_rng(self.seed)
        self.digits = rng.integers(0, 10, size=(self.num_pairs, 2))
        self.images = np.stack([
            np.stack([render_digit(int(a), rng), render_digit(int(b), rng)])
            for a, b in self.digits
        ])  # (pairs, 2, 1, 16, 16)
        self.classifier = small_convnet(1, 10, seed=self.seed,
                                        widths=(16, 32))
        # symbolic knowledge: the full addition table as Horn facts
        self.kb = KnowledgeBase()
        for a in range(10):
            for b in range(10):
                self.kb.add_fact("sum", str(a), str(b), str(a + b))

    def parameter_bytes(self) -> int:
        return self.classifier.parameter_bytes

    def codebook_bytes(self) -> int:
        return self.kb.num_facts * 24

    def run(self):
        with T.phase("neural"), T.stage("classification"):
            flat = self.images.reshape(-1, 1, 16, 16)
            logits = self.classifier(T.to_device(T.tensor(flat), "gpu"))
            probs = T.softmax(logits, axis=-1)
            predicted = np.argmax(probs.numpy(), axis=-1).reshape(
                self.num_pairs, 2)

        verified = 0
        with T.phase("symbolic"), T.stage("verification"):
            for (pa, pb), (ta, tb) in zip(predicted, self.digits):
                claimed = int(ta) + int(tb)  # the label to verify
                with record_region("sum_rule_check", OpCategory.OTHER,
                                   flops=100.0, bytes_read=2400):
                    holds = self.kb.has_fact("sum", str(int(pa)),
                                             str(int(pb)), str(claimed))
                verified += int(holds)

        return {"pairs": self.num_pairs, "verified": verified,
                "verification_rate": verified / self.num_pairs}


def main() -> None:
    report = characterize(DigitSumWorkload(seed=0))
    print(report.render())
    print()
    print("task result:", report.result)
    print()
    print("The same registry drives the whole suite:")
    from repro.workloads import available
    print("registered workloads:", available())


if __name__ == "__main__":
    main()
