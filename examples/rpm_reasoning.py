"""Abstract reasoning with NVSA and PrAE on Raven's Progressive
Matrices — the paper's flagship cognitive workload.

Generates RPM problems, runs both reasoners end-to-end (ConvNet
perception -> probabilistic/vector-symbolic abduction -> rule
execution -> answer selection), and compares their answers, detected
rules, and profiled bottlenecks.

Run:  python examples/rpm_reasoning.py
"""

from repro.core.analysis import latency_breakdown
from repro.core.report import format_time, render_table
from repro.datasets import rpm
from repro.hwsim import RTX_2080TI
from repro.workloads import create

NUM_PROBLEMS = 5


def describe_problem(problem: rpm.RPMProblem) -> str:
    rules = ", ".join(str(rule) for rule in problem.rules.values())
    return f"{problem.matrix_size}x{problem.matrix_size} [{rules}]"


def main() -> None:
    rows = []
    score = {"nvsa": 0, "prae": 0}
    for seed in range(NUM_PROBLEMS):
        for name in ("nvsa", "prae"):
            workload = create(name, seed=seed)
            trace = workload.profile()
            result = trace.metadata["result"]
            score[name] += int(result["correct"])
            lb = latency_breakdown(trace, RTX_2080TI)
            rows.append([
                seed, name.upper(),
                "yes" if result["correct"] else "NO",
                f"{result['rule_name_hits']}/3",
                format_time(lb.total_time),
                f"{lb.symbolic_fraction * 100:.0f}%",
            ])
    print(render_table(
        ["seed", "model", "correct", "rules detected",
         "latency (RTX model)", "symbolic share"],
        rows, title="NVSA vs PrAE on RPM problems"))
    print()
    for name, hits in score.items():
        print(f"{name.upper()} accuracy: {hits}/{NUM_PROBLEMS}")

    # peek inside one solved problem
    print()
    workload = create("nvsa", seed=1)
    trace = workload.profile()
    result = trace.metadata["result"]
    print("problem:", describe_problem(workload.problem))
    print("detected rules: ", result["detected_rules"])
    print("true rules:     ", result["true_rules"])
    print("picked candidate", result["predicted_index"],
          "(answer", str(result["answer_index"]) + ")")

    # where does the time go? (the paper's Takeaway 1)
    lb = latency_breakdown(trace, RTX_2080TI)
    stage_rows = sorted(lb.stage_times.items(), key=lambda kv: -kv[1])
    print()
    print(render_table(
        ["stage", "time", "share"],
        [[stage, format_time(t), f"{t / lb.total_time * 100:.1f}%"]
         for stage, t in stage_rows],
        title="NVSA stage latency (rule detection dominates)"))


if __name__ == "__main__":
    main()
