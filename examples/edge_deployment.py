"""Edge-deployment study: can neuro-symbolic models run in real time on
embedded platforms?  (Paper Sec. V-A / Fig. 2b.)

Projects every workload's trace onto the Jetson TX2, Xavier NX, and
RTX 2080 Ti models, checks each against a 33 ms real-time budget
(30 FPS perception-reasoning loop), and breaks down where the edge
platforms lose their time.

Run:  python examples/edge_deployment.py
"""

from repro.core.analysis import latency_breakdown
from repro.core.report import format_time, render_table
from repro.hwsim import JETSON_TX2, RTX_2080TI, XAVIER_NX, analyze_transfers
from repro.workloads import PAPER_ORDER, create

REAL_TIME_BUDGET = 0.033  # 30 FPS
DEVICES = (RTX_2080TI, XAVIER_NX, JETSON_TX2)


def main() -> None:
    traces = {name: create(name, seed=0).profile()
              for name in PAPER_ORDER}

    rows = []
    for name, trace in traces.items():
        row = [name.upper()]
        for device in DEVICES:
            lb = latency_breakdown(trace, device)
            marker = "" if lb.total_time <= REAL_TIME_BUDGET else " (!)"
            row.append(format_time(lb.total_time) + marker)
        rows.append(row)
    print(render_table(
        ["workload"] + [d.name for d in DEVICES], rows,
        title=f"Projected latency per inference "
              f"((!) = misses the {REAL_TIME_BUDGET*1e3:.0f} ms "
              f"real-time budget)"))

    # the symbolic share persists on every platform (Takeaway 2)
    print()
    rows = []
    for name, trace in traces.items():
        row = [name.upper()]
        for device in DEVICES:
            lb = latency_breakdown(trace, device)
            row.append(f"{lb.symbolic_fraction * 100:.0f}%")
        rows.append(row)
    print(render_table(
        ["workload"] + [d.name for d in DEVICES], rows,
        title="Symbolic latency share per platform"))

    # host<->device traffic (part of Takeaway 6's data-movement story)
    print()
    rows = []
    for name, trace in traces.items():
        report = analyze_transfers(trace, RTX_2080TI)
        rows.append([
            name.upper(), report.num_transfers,
            f"{report.total_bytes / 1024:.0f} KiB",
            f"{report.h2d_fraction * 100:.0f}%",
            format_time(report.total_time),
        ])
    print(render_table(
        ["workload", "transfers", "bytes", "host->device share",
         "transfer time"],
        rows, title="Host/device transfer analysis (RTX, PCIe 3.0)"))


if __name__ == "__main__":
    main()
