"""Setuptools shim: lets ``pip install -e .`` fall back to the legacy
editable path on minimal/offline environments that lack the ``wheel``
package PEP 660 builds require."""

from setuptools import setup

setup()
